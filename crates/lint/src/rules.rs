//! The five Mykil lint rules.
//!
//! Each rule reports [`Diagnostic`]s over a scanned file. Rules are
//! scoped by crate: the linter computes which workspace crate a file
//! belongs to from its path, and each rule declares which crates and
//! regions (test vs. non-test) it applies to.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L001 | no `unwrap()`/`expect()` in non-test code of protocol crates |
//! | L002 | secret types derive no `Debug`/`PartialEq`/`Hash` and zeroize on `Drop` |
//! | L003 | MAC/digest comparisons go through `ct_eq`, never `==`/`!=` |
//! | L004 | no wall-clock (`SystemTime`/`Instant`) in sim-deterministic crates |
//! | L005 | protocol `Msg` dispatch has no `_ =>` catch-all |

use crate::diagnostics::Diagnostic;
use crate::engine::CrateContext;
use crate::tokenizer::{Token, TokenKind};

/// Crates whose non-test code must be panic-free on peer input (L001).
pub const PROTOCOL_CRATES: &[&str] = &["core", "net", "tree"];

/// Harness allowlist: files inside protocol crates that are driven only
/// by the test harness, never by peer input. The chaos fault injector
/// and the invariant checker deliberately crash nodes and assert on
/// global state, so the panic-freedom rule L001 does not apply to them.
/// Everything else (L003 constant-time compares, L004 determinism,
/// L005 exhaustive dispatch) still does.
pub const HARNESS_PATHS: &[&str] = &["crates/net/src/chaos.rs", "crates/core/src/invariants.rs"];

/// Crates that must never read wall-clock time (L004): all their
/// behavior flows from the deterministic simulator clock.
pub const SIM_DETERMINISTIC_CRATES: &[&str] = &["net", "core"];

/// Crates that define secret-bearing types (L002). The net crate's
/// stable-storage layer holds at-rest key material (`SecretBytes`
/// wraps WAL records and checkpoint payloads), so it is held to the
/// same hygiene as the crypto crate.
pub const SECRET_TYPE_CRATES: &[&str] = &["crypto", "net"];

/// Types holding key material or cipher state (L002): no leaking
/// derives, mandatory zeroize-on-`Drop`.
pub const SECRET_TYPES: &[&str] = &[
    "SymmetricKey",
    "Rc4",
    "ChaCha20",
    "RsaKeyPair",
    "SecretBytes",
];

/// Derives forbidden on secret types: `Debug` prints state, and derived
/// `PartialEq`/`Hash` walk the bytes with early exit (timing leak).
const FORBIDDEN_DERIVES: &[&str] = &["Debug", "PartialEq", "Hash"];

/// Files that persist buffers to a real filesystem (L002's at-rest
/// pass): `FileStore` today, any future disk-backed store by addition.
const AT_REST_PATHS: &[&str] = &["crates/net/src/file_store.rs"];

/// Idents that mark a written buffer as hygienic at-rest output:
/// `as_slice` is the `SecretBytes` read accessor, `to_le_bytes`
/// produces fixed framing integers (lengths, CRCs, sequence numbers).
const AT_REST_OK_CALLS: &[&str] = &["as_slice", "to_le_bytes"];

/// Identifier segments that mark a value as MAC/digest material (L003).
const SECRET_COMPARE_SEGMENTS: &[&str] = &["mac", "tag", "digest", "hmac"];

/// Enum names whose dispatch must be exhaustive (L005).
const DISPATCH_ENUMS: &[&str] = &["Msg"];

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Code tokens.
    pub tokens: &'a [Token],
    /// Per-token flag: inside `#[cfg(test)]` / `#[test]` code.
    pub test_mask: &'a [bool],
}

impl FileContext<'_> {
    /// The `crates/<name>/src/` crate this file belongs to, if any.
    pub fn crate_name(&self) -> Option<&str> {
        let rest = self.path.strip_prefix("crates/")?;
        let (name, tail) = rest.split_once('/')?;
        tail.starts_with("src/").then_some(name)
    }

    fn in_protocol_src(&self) -> bool {
        !HARNESS_PATHS.contains(&self.path)
            && self
                .crate_name()
                .is_some_and(|c| PROTOCOL_CRATES.contains(&c))
    }
}

/// How a rule runs: over one file's raw tokens, or over every analyzed
/// file of a crate (the syntax-aware rules need cross-file facts: a
/// field's declared type, a timer kind's handling site).
#[derive(Clone, Copy)]
pub enum Check {
    /// Runs once per file over raw tokens.
    Token(fn(&FileContext<'_>) -> Vec<Diagnostic>),
    /// Runs once per workspace crate over AST-analyzed files.
    Crate(fn(&CrateContext<'_>) -> Vec<Diagnostic>),
}

/// A lint rule: id, one-line rationale, and the check itself.
pub struct RuleInfo {
    /// Stable rule id (`L001`…).
    pub id: &'static str,
    /// One-line description used by `--list-rules` and docs.
    pub description: &'static str,
    /// The check function.
    pub check: Check,
}

/// The rule registry, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L001",
        description: "no unwrap()/expect() in non-test code of protocol crates \
                      (core, net, tree): malformed peer input must not panic a node",
        check: Check::Token(check_l001),
    },
    RuleInfo {
        id: "L002",
        description: "secret-bearing types (SymmetricKey, Rc4, ChaCha20, RsaKeyPair, \
                      SecretBytes) must not derive Debug/PartialEq/Hash and must \
                      impl Drop (zeroize); at-rest storage files must write \
                      payloads only through SecretBytes::as_slice",
        check: Check::Token(check_l002),
    },
    RuleInfo {
        id: "L003",
        description: "MAC/digest/secret byte comparisons must use ct_eq, \
                      never ==/!= (timing side channel)",
        check: Check::Token(check_l003),
    },
    RuleInfo {
        id: "L004",
        description: "no wall-clock reads (SystemTime/Instant) in sim-deterministic \
                      crates (net, core): the simulator owns time",
        check: Check::Token(check_l004),
    },
    RuleInfo {
        id: "L005",
        description: "protocol Msg dispatch must match variants exhaustively, \
                      no `_ =>` catch-all (new wire messages must be triaged)",
        check: Check::Token(check_l005),
    },
    RuleInfo {
        id: "L006",
        description: "no iteration over HashMap/HashSet (.iter/.keys/.values/.drain/\
                      for-loops) in deterministic crates (core, net, tree): bucket \
                      order breaks seeded replay and byte-identical wire output",
        check: Check::Crate(crate::rules_ast::check_l006),
    },
    RuleInfo {
        id: "L007",
        description: "WAL-before-ack: in core handlers that commit to the WAL, \
                      every ack/reply Msg send must come after the commit \
                      (crash between send and commit orphans the peer)",
        check: Check::Crate(crate::rules_ast::check_l007),
    },
    RuleInfo {
        id: "L008",
        description: "every set_timer arm site must use a named TIMER_* kind that \
                      is matched or cancelled somewhere in the same crate \
                      (stale/orphan timer bug class)",
        check: Check::Crate(crate::rules_ast::check_l008),
    },
    RuleInfo {
        id: "L009",
        description: "no bare `as` narrowing casts (u8/u16/u32/i8/i16/i32) in \
                      wire/codec files: use try_from + Malformed \
                      (silent length-prefix truncation bug class)",
        check: Check::Crate(crate::rules_ast::check_l009),
    },
    RuleInfo {
        id: "L010",
        description: "no panicking slice access (x[i], split_at, copy_from_slice) \
                      in wire/codec files: use get()/split_at_checked/try_into \
                      and return Malformed",
        check: Check::Crate(crate::rules_ast::check_l010),
    },
];

fn diag(rule: &'static str, ctx: &FileContext<'_>, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        file: ctx.path.to_string(),
        line,
        message,
    }
}

/// L001: `.unwrap(` / `.expect(` outside test code of protocol crates.
fn check_l001(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    if !ctx.in_protocol_src() {
        return Vec::new();
    }
    let t = ctx.tokens;
    let mut out = Vec::new();
    for i in 1..t.len().saturating_sub(1) {
        if ctx.test_mask[i] {
            continue;
        }
        let name = &t[i];
        if name.kind == TokenKind::Ident
            && (name.text == "unwrap" || name.text == "expect")
            && t[i - 1].is_punct('.')
            && t[i + 1].is_punct('(')
        {
            out.push(diag(
                "L001",
                ctx,
                name.line,
                format!(
                    "`{}()` can panic on malformed or Byzantine peer input; \
                     return a ProtocolError (or annotate a proven-unreachable case)",
                    name.text
                ),
            ));
        }
    }
    out
}

/// L002: forbidden derives on secret types + mandatory `impl Drop`.
fn check_l002(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    if !ctx
        .crate_name()
        .is_some_and(|c| SECRET_TYPE_CRATES.contains(&c))
    {
        return Vec::new();
    }
    let t = ctx.tokens;
    let mut out = Vec::new();

    // Pass 1: derive lists directly preceding a secret struct/enum.
    let mut i = 0;
    while i < t.len() {
        if t[i].is_punct('#') && t.get(i + 1).is_some_and(|x| x.is_punct('[')) {
            if let Some((derives, attr_end)) = parse_derive_attr(t, i) {
                if let Some(name) = struct_name_after_attrs(t, attr_end) {
                    if SECRET_TYPES.contains(&name.text.as_str()) {
                        for (trait_name, line) in &derives {
                            if FORBIDDEN_DERIVES.contains(&trait_name.as_str()) {
                                out.push(diag(
                                    "L002",
                                    ctx,
                                    *line,
                                    format!(
                                        "secret type `{}` must not derive `{}` \
                                         (leaks or timing-compares key material); \
                                         implement it manually if needed",
                                        name.text, trait_name
                                    ),
                                ));
                            }
                        }
                    }
                }
                i = attr_end;
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: every secret type *defined* here must impl Drop here.
    for idx in 0..t.len() {
        if t[idx].is_ident("struct")
            && idx > 0
            && !t[idx - 1].is_ident("impl")
            && t.get(idx + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && SECRET_TYPES.contains(&n.text.as_str())
            })
        {
            let name = &t[idx + 1];
            let has_drop = t.windows(4).any(|w| {
                w[0].is_ident("impl")
                    && w[1].is_ident("Drop")
                    && w[2].is_ident("for")
                    && w[3].is_ident(&name.text)
            });
            if !has_drop {
                out.push(diag(
                    "L002",
                    ctx,
                    name.line,
                    format!(
                        "secret type `{}` must zeroize on Drop \
                         (`impl Drop for {}` not found in this file)",
                        name.text, name.text
                    ),
                ));
            }
        }
    }

    // Pass 3: at-rest write hygiene. In files that persist to a real
    // filesystem, every buffer handed to a write call must be either
    // fixed framing metadata (SCREAMING_CASE constants, `to_le_bytes`
    // integers) or the `as_slice()` view of a `SecretBytes` — a raw
    // `Vec<u8>` / `&[u8]` payload at the write boundary is how key
    // material reaches disk via buffers that never zeroize.
    if AT_REST_PATHS.contains(&ctx.path) {
        let mut i = 0;
        while i < t.len() {
            if ctx.test_mask.get(i).copied().unwrap_or(false) {
                i += 1;
                continue;
            }
            let name = &t[i];
            // `write` only as the path call `fs::write` — the method
            // position is `OpenOptions::write(bool)` here, and buffer
            // writes through the io trait all use `write_all`.
            let is_write_call = name.kind == TokenKind::Ident
                && (name.text == "write_all"
                    || (name.text == "write" && i > 0 && t[i - 1].is_punct(':')))
                && t.get(i + 1).is_some_and(|x| x.is_punct('('));
            if !is_write_call {
                i += 1;
                continue;
            }
            let Some(close) = matching_paren(t, i + 1) else {
                i += 1;
                continue;
            };
            // The written buffer is the last top-level argument
            // (`fs::write(path, bytes)` / `f.write_all(bytes)`).
            let arg = last_top_level_arg(t.get(i + 2..close).unwrap_or(&[]));
            if !at_rest_hygienic(arg) {
                out.push(diag(
                    "L002",
                    ctx,
                    name.line,
                    format!(
                        "raw buffer passed to `{}` in at-rest storage: wrap \
                         key-bearing payloads in `SecretBytes` and write \
                         `.as_slice()` (framing metadata stays SCREAMING_CASE \
                         consts / `to_le_bytes`)",
                        name.text
                    ),
                ));
            }
            i = close + 1;
        }
    }
    out
}

/// Index of the close paren matching the `(` at `open`.
fn matching_paren(t: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// The tokens of the last top-level (depth-0) comma-separated argument.
fn last_top_level_arg(args: &[Token]) -> &[Token] {
    let mut depth = 0i32;
    let mut start = 0usize;
    for (j, tok) in args.iter().enumerate() {
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && tok.is_punct(',') {
            start = j + 1;
        }
    }
    args.get(start..).unwrap_or(args)
}

/// Whether a written expression is hygienic at-rest output: it reads
/// through an approved accessor, or touches only SCREAMING_CASE
/// constants and literals.
fn at_rest_hygienic(arg: &[Token]) -> bool {
    let mut idents = arg.iter().filter(|x| x.kind == TokenKind::Ident);
    if idents
        .clone()
        .any(|x| AT_REST_OK_CALLS.contains(&x.text.as_str()))
    {
        return true;
    }
    idents.all(|x| is_screaming(&x.text))
}

/// `SCREAMING_CASE`: the shape of a framing const (`WAL_MAGIC`).
fn is_screaming(s: &str) -> bool {
    s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Parses `#[derive(A, B, …)]` starting at the `#` token. Returns the
/// derive list (name, line) and the index just past the closing `]`.
fn parse_derive_attr(t: &[Token], i: usize) -> Option<(Vec<(String, u32)>, usize)> {
    if !(t.get(i)?.is_punct('#') && t.get(i + 1)?.is_punct('[') && t.get(i + 2)?.is_ident("derive"))
    {
        return None;
    }
    let mut derives = Vec::new();
    let mut j = i + 3;
    if !t.get(j)?.is_punct('(') {
        return None;
    }
    j += 1;
    let mut depth = 1u32;
    while j < t.len() && depth > 0 {
        if t[j].is_punct('(') {
            depth += 1;
        } else if t[j].is_punct(')') {
            depth -= 1;
        } else if depth == 1 && t[j].kind == TokenKind::Ident {
            derives.push((t[j].text.clone(), t[j].line));
        }
        j += 1;
    }
    // Expect the closing `]`.
    if t.get(j).is_some_and(|x| x.is_punct(']')) {
        j += 1;
    }
    Some((derives, j))
}

/// Finds the struct/enum name after any further attributes and
/// visibility modifiers, without crossing into other items.
fn struct_name_after_attrs(t: &[Token], mut j: usize) -> Option<&Token> {
    while j < t.len() {
        if t[j].is_punct('#') && t.get(j + 1).is_some_and(|x| x.is_punct('[')) {
            // Skip a whole attribute.
            let mut depth = 0u32;
            j += 1;
            while j < t.len() {
                if t[j].is_punct('[') {
                    depth += 1;
                } else if t[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            continue;
        }
        if t[j].is_ident("pub") {
            j += 1;
            // Skip `(crate)` etc.
            if t.get(j).is_some_and(|x| x.is_punct('(')) {
                let mut depth = 0u32;
                while j < t.len() {
                    if t[j].is_punct('(') {
                        depth += 1;
                    } else if t[j].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            continue;
        }
        if t[j].is_ident("struct") || t[j].is_ident("enum") {
            return t.get(j + 1);
        }
        return None;
    }
    None
}

/// L003: `==` / `!=` on values whose names mark them as MAC material.
fn check_l003(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let Some(c) = ctx.crate_name() else {
        return Vec::new();
    };
    if !(c == "crypto" || PROTOCOL_CRATES.contains(&c)) {
        return Vec::new();
    }
    let t = ctx.tokens;
    let mut out = Vec::new();
    for i in 0..t.len().saturating_sub(1) {
        if ctx.test_mask[i] {
            continue;
        }
        let is_eq = t[i].is_punct('=') && t[i + 1].is_punct('=');
        let is_ne = t[i].is_punct('!') && t[i + 1].is_punct('=');
        if !(is_eq || is_ne) {
            continue;
        }
        // `a == b` must not be the tail of `<=`, `>=`, `==` already
        // counted, or `=>`.
        if i > 0 && (t[i - 1].is_punct('<') || t[i - 1].is_punct('>') || t[i - 1].is_punct('=')) {
            continue;
        }
        if t.get(i + 2).is_some_and(|x| x.is_punct('=')) && is_eq {
            // `===` cannot occur in Rust; defensive skip.
            continue;
        }
        // Length comparisons are not secret-dependent.
        if i >= 3 && t[i - 1].is_punct(')') && t[i - 2].is_punct('(') && t[i - 3].is_ident("len") {
            continue;
        }
        let window_hits = |range: &mut dyn Iterator<Item = usize>| -> bool {
            range.take(8).any(|j| {
                t.get(j).is_some_and(|tok| {
                    tok.kind == TokenKind::Ident && ident_is_secret_compare(&tok.text)
                })
            })
        };
        let left_hit = window_hits(&mut (0..i).rev());
        let right_hit = window_hits(&mut (i + 2..t.len()));
        if left_hit || right_hit {
            out.push(diag(
                "L003",
                ctx,
                t[i].line,
                format!(
                    "byte-wise `{}` on MAC/digest material is a timing side channel; \
                     compare through mykil_crypto::ct_eq",
                    if is_eq { "==" } else { "!=" }
                ),
            ));
        }
    }
    out
}

/// Whether an identifier names MAC/digest material: any snake_case
/// segment equal to one of the marker words.
fn ident_is_secret_compare(ident: &str) -> bool {
    ident
        .split('_')
        .any(|seg| SECRET_COMPARE_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

/// L004: wall-clock types in sim-deterministic crates.
fn check_l004(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let Some(c) = ctx.crate_name() else {
        return Vec::new();
    };
    if !SIM_DETERMINISTIC_CRATES.contains(&c) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for tok in ctx.tokens {
        if tok.kind == TokenKind::Ident && (tok.text == "SystemTime" || tok.text == "Instant") {
            out.push(diag(
                "L004",
                ctx,
                tok.line,
                format!(
                    "`{}` reads wall-clock time; sim-deterministic crates must take \
                     time from the simulator (`mykil_net::Time`) so runs reproduce bit-exactly",
                    tok.text
                ),
            ));
        }
    }
    out
}

/// L005: `_ =>` catch-alls inside `Msg` dispatch matches.
fn check_l005(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    if ctx.crate_name() != Some("core") {
        return Vec::new();
    }
    let t = ctx.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if !t[i].is_ident("match") || ctx.test_mask[i] {
            i += 1;
            continue;
        }
        // Find the `{` opening the match body (scrutinees cannot contain
        // top-level braces without parens).
        let mut j = i + 1;
        let mut pdepth = 0i32;
        let body_start = loop {
            let Some(tok) = t.get(j) else {
                break None;
            };
            if tok.is_punct('(') || tok.is_punct('[') {
                pdepth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                pdepth -= 1;
            } else if tok.is_punct('{') && pdepth == 0 {
                break Some(j);
            } else if tok.is_punct(';') && pdepth == 0 {
                break None; // not a match expression after all
            }
            j += 1;
        };
        let Some(body_start) = body_start else {
            i += 1;
            continue;
        };
        let (arms, body_end) = collect_match_arms(t, body_start);
        let dispatches_wire_enum = arms.iter().any(|(pat_start, pat_end, _)| {
            (*pat_start..*pat_end).any(|k| {
                t[k].kind == TokenKind::Ident
                    && DISPATCH_ENUMS.contains(&t[k].text.as_str())
                    && t.get(k + 1).is_some_and(|a| a.is_punct(':'))
                    && t.get(k + 2).is_some_and(|a| a.is_punct(':'))
            })
        });
        if dispatches_wire_enum {
            for (pat_start, pat_end, line) in &arms {
                let pat = &t[*pat_start..*pat_end];
                // `_` lexes as an identifier, not punctuation.
                if pat.len() == 1 && pat[0].is_ident("_") {
                    out.push(diag(
                        "L005",
                        ctx,
                        *line,
                        "protocol dispatch uses a `_ =>` catch-all; list the ignored \
                         Msg variants explicitly so new wire messages are triaged \
                         deliberately"
                            .to_string(),
                    ));
                }
            }
        }
        i = body_end.max(i + 1);
    }
    out
}

/// Collects `(pattern_start, pattern_end, line)` for each arm of the
/// match whose `{` is at `body_start`; returns the index after the
/// closing `}` as well.
fn collect_match_arms(t: &[Token], body_start: usize) -> (Vec<(usize, usize, u32)>, usize) {
    let mut arms = Vec::new();
    let mut j = body_start + 1;
    let mut brace = 1i32;
    let mut paren = 0i32;
    let mut arm_start: Option<usize> = None;
    while j < t.len() && brace > 0 {
        let tok = &t[j];
        if tok.is_punct('{') {
            brace += 1;
        } else if tok.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                break;
            }
        } else if tok.is_punct('(') || tok.is_punct('[') {
            paren += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            paren -= 1;
        }
        if brace == 1 && paren == 0 {
            if arm_start.is_none() && !tok.is_punct(',') && !tok.is_punct('}') {
                arm_start = Some(j);
            }
            // `=>` terminates the pattern (and any guard).
            if tok.is_punct('=') && t.get(j + 1).is_some_and(|x| x.is_punct('>')) {
                if let Some(start) = arm_start.take() {
                    // Trim a trailing `if guard` from the pattern so a
                    // lone `_ if cond` still counts as `_`.
                    let end = (start..j)
                        .find(|&k| t[k].is_ident("if"))
                        .unwrap_or(j);
                    arms.push((start, end, t[start].line));
                }
                // Skip over the arm body: either a block or until the
                // next `,` at this depth.
                j += 2;
                if t.get(j).is_some_and(|x| x.is_punct('{')) {
                    let mut d = 1i32;
                    j += 1;
                    while j < t.len() && d > 0 {
                        if t[j].is_punct('{') {
                            d += 1;
                        } else if t[j].is_punct('}') {
                            d -= 1;
                        }
                        j += 1;
                    }
                } else {
                    let mut d_paren = 0i32;
                    let mut d_brace = 0i32;
                    while j < t.len() {
                        let b = &t[j];
                        if b.is_punct('(') || b.is_punct('[') {
                            d_paren += 1;
                        } else if b.is_punct(')') || b.is_punct(']') {
                            d_paren -= 1;
                        } else if b.is_punct('{') {
                            d_brace += 1;
                        } else if b.is_punct('}') {
                            if d_brace == 0 {
                                break; // end of the match itself
                            }
                            d_brace -= 1;
                        } else if b.is_punct(',') && d_paren == 0 && d_brace == 0 {
                            j += 1;
                            break;
                        }
                        j += 1;
                    }
                }
                continue;
            }
        }
        j += 1;
    }
    (arms, j + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_source;

    fn rules_fired(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src)
            .into_iter()
            .map(|d| d.rule.to_string())
            .collect()
    }

    #[test]
    fn secret_segment_matching() {
        assert!(ident_is_secret_compare("expected_tag"));
        assert!(ident_is_secret_compare("mac"));
        assert!(ident_is_secret_compare("hmac_out"));
        assert!(!ident_is_secret_compare("stage"));
        assert!(!ident_is_secret_compare("message"));
        // Segment matching, not substring matching: "tags" != "tag".
        assert!(!ident_is_secret_compare("tags_list"));
    }

    #[test]
    fn crate_scoping() {
        // L001 only applies to protocol crates.
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(rules_fired("crates/core/src/a.rs", src), vec!["L001"]);
        assert_eq!(rules_fired("crates/analysis/src/a.rs", src), Vec::<String>::new());
        assert_eq!(rules_fired("crates/core/tests/a.rs", src), Vec::<String>::new());
    }
}
