//! Rekey hot-path performance gate.
//!
//! Runs the rekey-critical workloads — single-leave rekey, batched
//! mixed join/leave, and a 5000-member controller-storage build, each
//! on *both* tree backends (explicit keys and the keyed-hash forest),
//! plus wire encode/decode — under a counting allocator and reports
//! ops/sec, bytes/op, allocations/op and resident key bytes as
//! machine-readable JSON (`BENCH_rekey.json` at the repo root). Either
//! backend regressing past the tolerance fails the gate, and the KHF
//! backend's resident key bytes must stay sublinear (< 1/4) relative
//! to the explicit backend's O(n) at the 5000-member scale.
//!
//! ```text
//! perfgate                  # run and print
//! perfgate --write          # run and (re)write BENCH_rekey.json
//! perfgate --check <path>   # run and fail (exit 1) on regression
//!          --tolerance 15   #   deterministic-metric band, percent
//!          --out <path>     #   also dump the fresh JSON (CI artifact)
//! ```
//!
//! Gate semantics (see DESIGN.md §10): allocations/op and bytes/op are
//! deterministic for the fixed seeds used here and are gated at the
//! given tolerance; ops/sec is first normalized by a SHA-256
//! calibration loop (absorbing host-speed differences between the
//! committing machine and CI runners) and gated at twice the tolerance.

use mykil::rekey::write_entries_from_plan;
use mykil::wire::{Reader, Writer};
use mykil_bench::alloc_track::{alloc_count, CountingAllocator};
use mykil_crypto::drbg::Drbg;
use mykil_crypto::sha256::Sha256;
use mykil_tree::{ExplicitKeys, KeyStore, KhfKeys, MemberId, Tree, TreeConfig};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One workload's measurements.
struct Sample {
    name: &'static str,
    ops: u64,
    ops_per_sec: f64,
    bytes_per_op: f64,
    allocs_per_op: f64,
    /// Key material resident in the controller's tree after the run
    /// (the storage axis the KHF backend trades compute for).
    resident_key_bytes: f64,
}

/// Single-member leave rekey, the paper's Figure 5 path: tree mutation,
/// envelope sealing and wire encoding of the key-update body. The
/// vacated slot is re-joined outside the measured region to keep the
/// population stable.
fn rekey_single_leave<S: KeyStore>(name: &'static str) -> Sample {
    let mut rng = Drbg::from_seed(0xBE9C_0001);
    let mut tree = Tree::<S>::new(TreeConfig::quad(), &mut rng);
    const N: u64 = 1024;
    const OPS: u64 = 2000;
    for m in 0..N {
        // mykil-lint: allow(L001) -- bench setup with fresh ids
        tree.join(MemberId(m), &mut rng).expect("fresh id");
    }
    let mut elapsed = std::time::Duration::ZERO;
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    // Frame buffer reused across rekeys, as the production flush path
    // reuses its scratch: steady-state encodes allocate nothing.
    let mut scratch: Vec<u8> = Vec::new();
    for i in 0..OPS {
        let victim = MemberId(i % N);
        let t0 = Instant::now();
        let a0 = alloc_count();
        // mykil-lint: allow(L001) -- victim resident by construction
        let plan = tree.leave(victim, &mut rng).expect("resident member");
        let mut w = Writer::into_reused(std::mem::take(&mut scratch));
        write_entries_from_plan(&plan, &mut rng, &mut w);
        allocs += alloc_count() - a0;
        elapsed += t0.elapsed();
        bytes += w.len() as u64;
        scratch = w.into_bytes();
        // Restore population (unmeasured).
        // mykil-lint: allow(L001) -- id vacated two lines above
        tree.join(victim, &mut rng).expect("slot just vacated");
    }
    Sample {
        name,
        ops: OPS,
        ops_per_sec: OPS as f64 / elapsed.as_secs_f64(),
        bytes_per_op: bytes as f64 / OPS as f64,
        allocs_per_op: allocs as f64 / OPS as f64,
        resident_key_bytes: tree.resident_key_bytes() as f64,
    }
}

/// Batched mixed join/leave (Section III-E aggregation): eight leavers
/// and eight joiners per flush, one combined plan, sealed and encoded.
fn rekey_batch_mixed<S: KeyStore>(name: &'static str) -> Sample {
    let mut rng = Drbg::from_seed(0xBE9C_0002);
    let mut tree = Tree::<S>::new(TreeConfig::quad(), &mut rng);
    const N: u64 = 4096;
    const OPS: u64 = 250;
    const CHURN: u64 = 8;
    for m in 0..N {
        // mykil-lint: allow(L001) -- bench setup with fresh ids
        tree.join(MemberId(m), &mut rng).expect("fresh id");
    }
    let mut next_id = N;
    let mut oldest = 0u64;
    let mut elapsed = std::time::Duration::ZERO;
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    let mut scratch: Vec<u8> = Vec::new();
    for _ in 0..OPS {
        let joins: Vec<MemberId> = (0..CHURN).map(|k| MemberId(next_id + k)).collect();
        let leaves: Vec<MemberId> = (0..CHURN).map(|k| MemberId(oldest + k)).collect();
        next_id += CHURN;
        oldest += CHURN;
        let t0 = Instant::now();
        let a0 = alloc_count();
        // mykil-lint: allow(L001) -- ids validated by construction
        let out = tree.batch(&joins, &leaves, &mut rng).expect("valid batch");
        let mut w = Writer::into_reused(std::mem::take(&mut scratch));
        write_entries_from_plan(&out.plan, &mut rng, &mut w);
        allocs += alloc_count() - a0;
        elapsed += t0.elapsed();
        bytes += w.len() as u64;
        scratch = w.into_bytes();
    }
    Sample {
        name,
        ops: OPS,
        ops_per_sec: OPS as f64 / elapsed.as_secs_f64(),
        bytes_per_op: bytes as f64 / OPS as f64,
        allocs_per_op: allocs as f64 / OPS as f64,
        resident_key_bytes: tree.resident_key_bytes() as f64,
    }
}

/// Controller storage at scale: build a 5000-member area, then one
/// mixed 64-leave/64-join batch (so the KHF override table reflects
/// realistic leave churn). The headline metric is `resident_key_bytes`
/// — O(n) for the explicit store, O(overrides) for the forest.
fn resident_keys_5000<S: KeyStore>(name: &'static str) -> Sample {
    let mut rng = Drbg::from_seed(0xBE9C_0003);
    let mut tree = Tree::<S>::new(TreeConfig::quad(), &mut rng);
    const N: u64 = 5000;
    const CHURN: u64 = 64;
    let t0 = Instant::now();
    let a0 = alloc_count();
    for m in 0..N {
        // mykil-lint: allow(L001) -- bench setup with fresh ids
        tree.join(MemberId(m), &mut rng).expect("fresh id");
    }
    let joins: Vec<MemberId> = (N..N + CHURN).map(MemberId).collect();
    let leaves: Vec<MemberId> = (0..CHURN).map(MemberId).collect();
    // mykil-lint: allow(L001) -- ids validated by construction
    let out = tree.batch(&joins, &leaves, &mut rng).expect("valid batch");
    let allocs = alloc_count() - a0;
    let elapsed = t0.elapsed();
    let ops = N + 1;
    Sample {
        name,
        ops,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
        bytes_per_op: out.plan.multicast_bytes() as f64,
        allocs_per_op: allocs as f64 / ops as f64,
        resident_key_bytes: tree.resident_key_bytes() as f64,
    }
}

/// Wire codec round trip: a key-update-shaped frame (header plus 16
/// length-prefixed envelope fields) encoded then fully decoded.
fn wire_encode_decode() -> Sample {
    const OPS: u64 = 20_000;
    const ENTRIES: usize = 16;
    let env = [0xA5u8; 44]; // sealed 16-byte key + envelope overhead
    let mut elapsed = std::time::Duration::ZERO;
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    let mut checksum = 0u64;
    for i in 0..OPS {
        let t0 = Instant::now();
        let a0 = alloc_count();
        let mut w = Writer::new();
        w.u8(30).u32(7).u64(i);
        w.u32(ENTRIES as u32);
        for e in 0..ENTRIES {
            w.u32(e as u32).u8(1).u32((e * 2) as u32);
            w.bytes(&env);
        }
        let frame = w.into_bytes();
        let mut r = Reader::new(&frame);
        let mut acc = 0u64;
        acc += u64::from(r.u8().unwrap_or(0));
        acc += u64::from(r.u32().unwrap_or(0));
        acc += r.u64().unwrap_or(0);
        let n = r.u32().unwrap_or(0);
        for _ in 0..n {
            acc += u64::from(r.u32().unwrap_or(0));
            acc += u64::from(r.u8().unwrap_or(0));
            acc += u64::from(r.u32().unwrap_or(0));
            acc += r.bytes().map(|b| b.len() as u64).unwrap_or(0);
        }
        allocs += alloc_count() - a0;
        elapsed += t0.elapsed();
        bytes += frame.len() as u64;
        checksum = checksum.wrapping_add(acc);
    }
    // Keep the decode loop observable.
    assert!(checksum > 0);
    Sample {
        name: "wire_encode_decode",
        ops: OPS,
        ops_per_sec: OPS as f64 / elapsed.as_secs_f64(),
        bytes_per_op: bytes as f64 / OPS as f64,
        allocs_per_op: allocs as f64 / OPS as f64,
        resident_key_bytes: 0.0,
    }
}

/// Host-speed calibration: SHA-256 digests over a 4 KiB buffer per
/// second. Throughput comparisons divide by this, so a slower CI runner
/// does not read as a regression.
fn calibrate() -> f64 {
    let buf = [0x5Au8; 4096];
    let mut acc = 0u64;
    const ITERS: u64 = 4000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        acc = acc.wrapping_add(u64::from(Sha256::digest(&buf)[0]));
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(acc != u64::MAX);
    ITERS as f64 / dt
}

fn render_json(samples: &[Sample], calibration: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str("  \"description\": \"rekey hot-path perf gate; refresh with: cargo run --release -p mykil-bench --bin perfgate -- --write\",\n");
    out.push_str(&format!(
        "  \"calibration_sha256_4k_per_sec\": {calibration:.1},\n"
    ));
    out.push_str("  \"workloads\": {\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"ops\": {}, \"ops_per_sec\": {:.1}, \"bytes_per_op\": {:.2}, \"allocs_per_op\": {:.3}, \"resident_key_bytes\": {:.0} }}{}\n",
            s.name,
            s.ops,
            s.ops_per_sec,
            s.bytes_per_op,
            s.allocs_per_op,
            s.resident_key_bytes,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Extracts `"key": <number>` from `text` scoped to the object that
/// follows `"scope"` (a flat scan is enough for the format we emit).
fn json_num(text: &str, scope: &str, key: &str) -> Option<f64> {
    let start = match scope.is_empty() {
        true => 0,
        false => text.find(&format!("\"{scope}\""))?,
    };
    let scoped = &text[start..];
    let end = scoped.find('}').unwrap_or(scoped.len());
    let scoped = &scoped[..end];
    let kpos = scoped.find(&format!("\"{key}\""))?;
    let after = &scoped[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let numlen = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..numlen].parse().ok()
}

struct Regression {
    what: String,
    base: f64,
    fresh: f64,
    limit_pct: f64,
}

/// Compares fresh samples against a committed baseline. Returns the
/// list of out-of-band metrics.
fn check(baseline: &str, samples: &[Sample], calibration: f64, tol_pct: f64) -> Vec<Regression> {
    let mut bad = Vec::new();
    let base_calib = json_num(baseline, "", "calibration_sha256_4k_per_sec").unwrap_or(calibration);
    for s in samples {
        let Some(base_allocs) = json_num(baseline, s.name, "allocs_per_op") else {
            bad.push(Regression {
                what: format!("{}: missing from baseline", s.name),
                base: 0.0,
                fresh: 0.0,
                limit_pct: 0.0,
            });
            continue;
        };
        let base_bytes = json_num(baseline, s.name, "bytes_per_op").unwrap_or(0.0);
        let base_ops = json_num(baseline, s.name, "ops_per_sec").unwrap_or(0.0);

        // Deterministic metrics: hard band at the tolerance (plus a
        // small absolute slack so near-zero counts cannot flake).
        if s.allocs_per_op > base_allocs * (1.0 + tol_pct / 100.0) + 0.5 {
            bad.push(Regression {
                what: format!("{}: allocs_per_op", s.name),
                base: base_allocs,
                fresh: s.allocs_per_op,
                limit_pct: tol_pct,
            });
        }
        if s.bytes_per_op > base_bytes * (1.0 + tol_pct / 100.0) + 4.0 {
            bad.push(Regression {
                what: format!("{}: bytes_per_op", s.name),
                base: base_bytes,
                fresh: s.bytes_per_op,
                limit_pct: tol_pct,
            });
        }
        // Resident key bytes are deterministic too (a new tree built
        // from fixed seeds); absent from older baselines -> skip.
        if let Some(base_resident) = json_num(baseline, s.name, "resident_key_bytes") {
            if s.resident_key_bytes > base_resident * (1.0 + tol_pct / 100.0) + 16.0 {
                bad.push(Regression {
                    what: format!("{}: resident_key_bytes", s.name),
                    base: base_resident,
                    fresh: s.resident_key_bytes,
                    limit_pct: tol_pct,
                });
            }
        }

        // Throughput: normalize by the calibration ratio, then allow a
        // doubled band for residual host noise.
        if base_ops > 0.0 && base_calib > 0.0 && calibration > 0.0 {
            let expected = base_ops * (calibration / base_calib);
            if s.ops_per_sec < expected * (1.0 - 2.0 * tol_pct / 100.0) {
                bad.push(Regression {
                    what: format!("{}: ops_per_sec (calibrated)", s.name),
                    base: expected,
                    fresh: s.ops_per_sec,
                    limit_pct: 2.0 * tol_pct,
                });
            }
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write = false;
    let mut check_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut tolerance = 15.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write" => write = true,
            "--check" => check_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or(tolerance)
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let calibration = calibrate();
    let samples = vec![
        rekey_single_leave::<ExplicitKeys>("rekey_single_leave"),
        rekey_single_leave::<KhfKeys>("rekey_single_leave_khf"),
        rekey_batch_mixed::<ExplicitKeys>("rekey_batch_mixed"),
        rekey_batch_mixed::<KhfKeys>("rekey_batch_mixed_khf"),
        resident_keys_5000::<ExplicitKeys>("resident_keys_5000"),
        resident_keys_5000::<KhfKeys>("resident_keys_5000_khf"),
        wire_encode_decode(),
    ];

    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>14}",
        "workload", "ops/sec", "bytes/op", "allocs/op", "resident-keys"
    );
    for s in &samples {
        println!(
            "{:<24} {:>12.0} {:>12.1} {:>12.2} {:>14.0}",
            s.name, s.ops_per_sec, s.bytes_per_op, s.allocs_per_op, s.resident_key_bytes
        );
    }
    println!("calibration: {calibration:.0} sha256-4k/sec");

    // The KHF backend's reason to exist: resident key bytes must be
    // decisively sublinear relative to the explicit store's O(n) at
    // the 5000-member scale. This is structural, not host-dependent.
    let explicit_resident = samples
        .iter()
        .find(|s| s.name == "resident_keys_5000")
        .map(|s| s.resident_key_bytes)
        .unwrap_or(0.0);
    let khf_resident = samples
        .iter()
        .find(|s| s.name == "resident_keys_5000_khf")
        .map(|s| s.resident_key_bytes)
        .unwrap_or(f64::MAX);
    if khf_resident * 4.0 >= explicit_resident {
        eprintln!(
            "khf resident key bytes not sublinear: khf {khf_resident:.0} vs explicit {explicit_resident:.0}"
        );
        std::process::exit(1);
    }

    let json = render_json(&samples, calibration);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if write {
        if let Err(e) = std::fs::write("BENCH_rekey.json", &json) {
            eprintln!("cannot write BENCH_rekey.json: {e}");
            std::process::exit(2);
        }
        println!("wrote BENCH_rekey.json");
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let bad = check(&baseline, &samples, calibration, tolerance);
        if bad.is_empty() {
            println!("perf gate: PASS (tolerance {tolerance}%)");
        } else {
            println!("perf gate: FAIL");
            for r in &bad {
                println!(
                    "  {} regressed beyond {:.0}%: baseline {:.2}, fresh {:.2}",
                    r.what, r.limit_pct, r.base, r.fresh
                );
            }
            std::process::exit(1);
        }
    }
}
