//! Private-key serialization: persist and restore an [`RsaKeyPair`].
//!
//! A production deployment stores controller keys on disk (the paper's
//! area controllers survive restarts via their primary-backup pair, but
//! the registration server's identity key must persist). The format is
//! a tagged sequence of length-prefixed big-endian integers — all CRT
//! components included so a restored key keeps its fast private path.

use super::{RsaKeyPair, RsaPublicKey};
use crate::bignum::BigUint;
use crate::CryptoError;

const MAGIC: &[u8; 4] = b"MKR1";

fn put(out: &mut Vec<u8>, n: &BigUint) {
    let bytes = n.to_bytes_be();
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&bytes);
}

fn take(cursor: &mut &[u8]) -> Result<BigUint, CryptoError> {
    let err = || CryptoError::InvalidParameter("truncated key encoding");
    if cursor.len() < 4 {
        return Err(err());
    }
    let len = u32::from_be_bytes(cursor[..4].try_into().unwrap()) as usize;
    *cursor = &cursor[4..];
    if cursor.len() < len || len > 4096 {
        return Err(err());
    }
    let out = BigUint::from_bytes_be(&cursor[..len]);
    *cursor = &cursor[len..];
    Ok(out)
}

impl RsaKeyPair {
    /// Serializes the full key pair (public and private components).
    ///
    /// The output contains private key material — protect it like the
    /// key itself.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.public.block_len() * 5);
        out.extend_from_slice(MAGIC);
        put(&mut out, &self.public.n);
        put(&mut out, &self.public.e);
        put(&mut out, &self.d);
        put(&mut out, &self.p);
        put(&mut out, &self.q);
        put(&mut out, &self.d_p);
        put(&mut out, &self.d_q);
        put(&mut out, &self.q_inv);
        out
    }

    /// Restores a key pair serialized with [`Self::to_bytes`],
    /// validating internal consistency (`p·q = n` and a private/public
    /// round trip) so corrupted or mismatched components are rejected
    /// rather than producing silently wrong signatures.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidParameter`] on malformed input;
    /// [`CryptoError::KeyGeneration`] when the components are
    /// inconsistent.
    pub fn from_bytes(bytes: &[u8]) -> Result<RsaKeyPair, CryptoError> {
        if bytes.len() < 4 || &bytes[..4] != MAGIC {
            return Err(CryptoError::InvalidParameter("bad key magic"));
        }
        let mut cursor = &bytes[4..];
        let n = take(&mut cursor)?;
        let e = take(&mut cursor)?;
        let d = take(&mut cursor)?;
        let p = take(&mut cursor)?;
        let q = take(&mut cursor)?;
        let d_p = take(&mut cursor)?;
        let d_q = take(&mut cursor)?;
        let q_inv = take(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(CryptoError::InvalidParameter("trailing key bytes"));
        }
        if &p * &q != n {
            return Err(CryptoError::KeyGeneration("p*q does not match n"));
        }
        let public = RsaPublicKey::from_components(n, e)?;
        let pair = RsaKeyPair {
            public,
            d,
            p,
            q,
            d_p,
            d_q,
            q_inv,
        };
        // Private/public round trip on a modulus-sized probe catches any
        // corrupted exponent or CRT component. (The probe must exceed
        // both primes, otherwise the CRT recombination term `q_inv`
        // cancels out and goes unchecked.)
        let probe = pair.public.n.shr_bits(1);
        let c = pair.public.raw_public_op(&probe)?;
        if pair.raw_private_op(&c)? != probe {
            return Err(CryptoError::KeyGeneration("key components inconsistent"));
        }
        // Also exercise the plain exponent `d` (unused by the CRT path).
        if pair.raw_private_op_no_crt(&c)? != probe {
            return Err(CryptoError::KeyGeneration("private exponent inconsistent"));
        }
        Ok(pair)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_keys::pair768;
    use super::*;
    use crate::drbg::Drbg;

    #[test]
    fn round_trip_preserves_functionality() {
        let pair = pair768();
        let restored = RsaKeyPair::from_bytes(&pair.to_bytes()).unwrap();
        assert_eq!(restored.public(), pair.public());
        // Signatures by the original verify under the restored key and
        // vice versa.
        let sig = pair.sign(b"persisted");
        assert!(restored.public().verify(b"persisted", &sig));
        let sig2 = restored.sign(b"persisted");
        assert_eq!(sig, sig2, "deterministic signatures must match");
        // Decryption works through the restored CRT path.
        let mut rng = Drbg::from_seed(1);
        let ct = pair.public().encrypt(b"secret", &mut rng).unwrap();
        assert_eq!(restored.decrypt(&ct).unwrap(), b"secret");
    }

    #[test]
    fn corrupt_encodings_rejected() {
        let pair = pair768();
        let bytes = pair.to_bytes();
        assert!(RsaKeyPair::from_bytes(&[]).is_err());
        assert!(RsaKeyPair::from_bytes(b"XXXX").is_err());
        assert!(RsaKeyPair::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(RsaKeyPair::from_bytes(&extra).is_err());
    }

    #[test]
    fn tampered_components_rejected() {
        let pair = pair768();
        let bytes = pair.to_bytes();
        // Flip one byte somewhere in the middle of each region and
        // confirm the consistency checks catch it.
        for frac in [3usize, 5, 7, 9] {
            let mut bad = bytes.clone();
            let idx = bad.len() * frac / 10;
            bad[idx] ^= 0x01;
            assert!(
                RsaKeyPair::from_bytes(&bad).is_err(),
                "byte {idx} corruption accepted"
            );
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let pair = pair768();
        assert_eq!(pair.to_bytes(), pair.to_bytes());
    }
}
