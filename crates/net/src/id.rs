//! Node and multicast-group identifiers.

use std::fmt;

/// Identifier of a simulated node (registration server, area controller,
/// group member, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index (stable for the lifetime of the simulator).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// Only meaningful for ids previously produced by the same
    /// [`Simulator`](crate::Simulator); mainly useful for serializing
    /// node references inside protocol messages.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a multicast group managed by the simulator.
///
/// Mykil uses one multicast group per area (for area-internal key
/// updates and data) — see Figure 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub(crate) u32);

impl GroupId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GroupId` from a raw index (see [`NodeId::from_index`]).
    pub fn from_index(index: usize) -> GroupId {
        GroupId(index as u32)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let n = NodeId::from_index(17);
        assert_eq!(n.index(), 17);
        assert_eq!(NodeId::from_index(n.index()), n);
        let g = GroupId::from_index(3);
        assert_eq!(g.index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::from_index(5).to_string(), "n5");
        assert_eq!(GroupId::from_index(2).to_string(), "g2");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
