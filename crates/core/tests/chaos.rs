//! Chaos soak and fault-recovery scenarios (ISSUE 3).
//!
//! The soak test drives seeded random [`FaultPlan`]s through full
//! replicated deployments — including storage faults (lying fsync,
//! torn tails, checkpoint corruption) — and asserts the global
//! invariants (`mykil::invariants`) at every quiescent point; on a
//! violation it
//! dumps the serialized fault schedule to
//! `$CARGO_TARGET_TMPDIR/chaos-failures/seed-<seed>.txt` so the run
//! replays as a deterministic regression. The remaining tests are
//! exactly such replays and focused crash-restart scenarios: the
//! split-brain partition/heal schedule, the registration server
//! crashing mid-join, member amnesia across restart, and a restarted
//! primary being epoch-fenced back down to backup.

use mykil::area::Role;
use mykil::group::{GroupBuilder, GroupHandle};
use mykil::invariants::InvariantChecker;
use mykil_net::{ChaosDriver, ChaosOptions, Duration, FaultPlan, Time};

/// Number of seeds the soak covers by default. The `CHAOS_SEEDS` env
/// var overrides it (CI keeps PR runs small and soaks more seeds
/// nightly).
const SOAK_SEEDS: u64 = 20;

fn soak_seeds() -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SOAK_SEEDS)
}

fn dump_failure(seed: u64, plan: &FaultPlan, violations: &[impl std::fmt::Display]) -> String {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("chaos-failures");
    std::fs::create_dir_all(&dir).expect("create chaos-failures dir");
    let path = dir.join(format!("seed-{seed}.txt"));
    let mut text = format!("# chaos soak failure, seed {seed}\n");
    for v in violations {
        text.push_str(&format!("# violation: {v}\n"));
    }
    text.push_str("# replay: FaultPlan::parse the lines below and drive\n");
    text.push_str("# them through an identical deployment.\n");
    text.push_str(&plan.serialize());
    std::fs::write(&path, &text).expect("write fault-schedule dump");
    path.display().to_string()
}

/// Builds the canonical soak deployment: three replicated areas and
/// four auto-joining members, settled before the faults start.
fn soak_group(seed: u64) -> GroupHandle {
    let mut g = GroupBuilder::new(seed)
        .rsa_bits(512)
        .areas(3)
        .replicated(true)
        .build();
    for i in 0..4 {
        g.register_member(i);
    }
    g.settle();
    g
}

#[test]
fn chaos_soak_invariants_hold_across_seeds() {
    for seed in 1..=soak_seeds() {
        let mut g = soak_group(seed);
        let mut checker = InvariantChecker::new();
        assert_eq!(
            checker.check(&g),
            vec![],
            "seed {seed}: deployment unhealthy before any fault"
        );

        // Controllers and members are all fair game; the registration
        // server stays up (its crash has a dedicated scenario below).
        let mut targets = g.primaries.clone();
        targets.extend(&g.backups);
        targets.extend(&g.members);
        let opts = ChaosOptions {
            targets,
            horizon: Duration::from_secs(12),
            episodes: 8,
            max_knob_per_mille: 250,
            storage_faults: true,
        };
        let plan = FaultPlan::random(seed, &opts);
        let mut driver = ChaosDriver::new(plan);

        // Drive the plan in slices, interleaving live workload so the
        // faults hit joins, rekeys and data traffic — not an idle group.
        let start = g.now();
        for slice in 1..=3u64 {
            driver.run_until(&mut g.sim, start + Duration::from_secs(4 * slice));
            let talker = g.members.iter().copied().find(|&m| !g.sim.is_crashed(m));
            if let Some(m) = talker {
                g.send_data(m, format!("soak-{seed}-{slice}").as_bytes());
            }
            match slice {
                1 => {
                    g.register_member(100 + seed);
                }
                2 => {
                    if let Some(m) = talker {
                        g.move_member(m, (seed % 3) as usize);
                    }
                }
                _ => {}
            }
        }
        assert!(driver.finished(), "seed {seed}: plan not fully injected");

        // The cleanup batch has healed the world; let it quiesce, then
        // the invariants must hold — twice, so the replication baseline
        // from the first check also validates monotonicity.
        g.run_for(Duration::from_secs(12));
        for pass in 0..2 {
            let violations = checker.check(&g);
            if !violations.is_empty() {
                let path = dump_failure(seed, driver.plan(), &violations);
                panic!(
                    "seed {seed} pass {pass}: {} invariant violation(s): {}; \
                     fault schedule dumped to {path}",
                    violations.len(),
                    violations
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                );
            }
            g.run_for(Duration::from_secs(3));
        }

        // Scheduler hygiene (ISSUE 7 satellite): after a soak full of
        // crashes the timer bookkeeping must be residue-free. The old
        // scheduler leaked `cancelled` tombstones for timers dropped by
        // a crash; the wheel cancels in place, so every armed token
        // maps to exactly one pending event and nothing more.
        assert!(
            g.sim.timer_accounting_consistent(),
            "seed {seed}: timer bookkeeping left residue after the soak"
        );
    }
}

/// Replay regression: the partition/heal schedule that forces a
/// split brain. Area 1's primary (node 2 in the canonical layout) is
/// isolated long enough for its backup to take over; after the heal
/// the stale primary's heartbeat reaches the promoted backup, whose
/// higher takeover epoch demotes it — one primary survives.
#[test]
fn split_brain_heal_replays_from_dumped_schedule() {
    const SCHEDULE: &str = "\
# seed-format replay: isolate area 1's primary, then heal.
6000000 partition 2 1
11000000 heal
";
    let plan = FaultPlan::parse(SCHEDULE).expect("schedule parses");
    // The dump format round-trips: replaying a re-serialized schedule
    // is the same schedule.
    assert_eq!(FaultPlan::parse(&plan.serialize()).unwrap(), plan);

    let mut g = soak_group(7);
    assert_eq!(g.primaries[1].index(), 2, "canonical node layout drifted");
    let mut checker = InvariantChecker::new();
    let mut driver = ChaosDriver::new(plan);
    driver.run_until(&mut g.sim, Time::from_secs(14));
    g.run_for(Duration::from_secs(4));

    // The backup won the epoch race and the stale primary stood down.
    assert_eq!(g.backup(1).role(), Role::Primary);
    assert_eq!(
        g.ac(1).role(),
        Role::Backup { primary: g.backups[1] },
        "stale primary was never demoted"
    );
    assert!(g.stats().counter("ac-takeovers") >= 1);
    assert!(g.stats().counter("ac-demotions") >= 1);
    assert_eq!(
        checker.check(&g),
        vec![],
        "invariants violated after split-brain reconciliation"
    );
}

/// The registration server crashes while a member's join is in
/// flight; the member keeps retrying and completes the join once the
/// server restarts (losing its in-memory pending handshakes is fine —
/// the protocol restarts them).
#[test]
fn rs_crash_mid_join_recovers_after_restart() {
    let mut g = GroupBuilder::new(51).rsa_bits(512).areas(2).build();
    g.sim.crash(g.rs());
    let m = g.register_member(0);
    g.run_for(Duration::from_secs(4));
    assert!(!g.is_member(m), "joined through a crashed RS");
    assert!(
        g.stats().counter("member-handshake-retries") >= 1,
        "member gave up instead of retrying the registration"
    );

    assert!(g.sim.restart(g.rs()));
    g.run_for(Duration::from_secs(6));
    assert_eq!(g.stats().counter("rs-restarts"), 1);
    assert!(g.is_member(m), "join never completed after the RS restart");
    let area = g.member(m).area().expect("active member has an area").0 as usize;
    assert_eq!(g.member(m).current_area_key(), Some(g.ac(area).area_key()));
}

/// Crash-restart amnesia: a crashed member is evicted (with a
/// forward-secrecy rekey); on restart it discards its stale session
/// and rejoins, converging on the *new* area key.
#[test]
fn crashed_member_is_evicted_and_rejoins_after_restart() {
    let mut g = GroupBuilder::new(52).rsa_bits(512).areas(2).build();
    let m = g.register_member(0);
    let witness = g.register_member(1);
    g.settle();
    assert!(g.is_member(m) && g.is_member(witness));
    let area = g.member(m).area().unwrap().0 as usize;
    let client = g.member(m).client_id().unwrap();
    let key_before = g.ac(area).area_key();

    g.sim.crash(m);
    g.run_for(Duration::from_secs(4));
    assert!(
        !g.ac(area).has_member(client),
        "silent member was never evicted"
    );
    assert_ne!(
        g.ac(area).area_key(),
        key_before,
        "eviction did not rotate the area key (forward secrecy)"
    );

    assert!(g.sim.restart(m));
    g.run_for(Duration::from_secs(8));
    assert_eq!(g.stats().counter("member-restarts"), 1);
    assert!(g.is_member(m), "member never rejoined after restart");
    let area_now = g.member(m).area().unwrap().0 as usize;
    assert_eq!(
        g.member(m).current_area_key(),
        Some(g.ac(area_now).area_key()),
        "rejoined member holds a stale key"
    );
    // The witness saw the eviction rekey too and stayed converged.
    let w_area = g.member(witness).area().unwrap().0 as usize;
    assert_eq!(
        g.member(witness).current_area_key(),
        Some(g.ac(w_area).area_key())
    );
}

/// A crashed-then-restarted primary wakes up believing it still runs
/// the area; the promoted backup's higher takeover epoch demotes it
/// to backup — no dueling primaries, replication resumes toward the
/// new primary.
#[test]
fn restarted_primary_is_demoted_to_backup() {
    let mut g = GroupBuilder::new(53)
        .rsa_bits(512)
        .areas(2)
        .replicated(true)
        .build();
    let members: Vec<_> = (0..2).map(|i| g.register_member(i)).collect();
    g.settle();
    let mut checker = InvariantChecker::new();
    assert_eq!(checker.check(&g), vec![]);

    g.crash_ac(1);
    g.run_for(Duration::from_secs(3));
    assert_eq!(g.backup(1).role(), Role::Primary);

    assert!(g.sim.restart(g.primaries[1]));
    g.run_for(Duration::from_secs(5));
    assert!(g.stats().counter("ac-restarts") >= 1);
    assert!(g.stats().counter("ac-demotions") >= 1);
    assert_eq!(
        g.ac(1).role(),
        Role::Backup { primary: g.backups[1] },
        "restarted primary still thinks it runs the area"
    );
    assert_eq!(g.backup(1).role(), Role::Primary);
    assert_eq!(
        checker.check(&g),
        vec![],
        "invariants violated after the restart/demotion cycle"
    );
    for m in members {
        assert!(g.is_member(m));
    }
}

/// Regression for the HashMap→BTreeMap determinism migration (lint
/// L006): a seeded chaos soak must replay **byte-identically**. Two
/// independent deployments built from the same seed, driven through
/// the same random fault plan with live workload interleaved, must
/// produce the same fault schedule and the same delivery/drop/timer
/// trace, byte for byte. Before the migration this held only
/// probabilistically — any hash-ordered iteration feeding the
/// schedule (multicast fan-out, membership sweeps) could reorder
/// same-timestamp events between runs.
#[test]
fn chaos_soak_replay_is_byte_identical() {
    fn run(seed: u64) -> (String, String) {
        let mut g = soak_group(seed);
        g.sim.enable_trace(200_000);
        let mut targets = g.primaries.clone();
        targets.extend(&g.backups);
        targets.extend(&g.members);
        let opts = ChaosOptions {
            targets,
            horizon: Duration::from_secs(8),
            episodes: 6,
            max_knob_per_mille: 250,
            storage_faults: true,
        };
        let plan = FaultPlan::random(seed, &opts);
        let schedule = plan.serialize();
        let mut driver = ChaosDriver::new(plan);

        // Interleave workload exactly like the soak so the trace
        // covers joins, moves and data traffic, not an idle group.
        let start = g.now();
        for slice in 1..=2u64 {
            driver.run_until(&mut g.sim, start + Duration::from_secs(4 * slice));
            let talker = g.members.iter().copied().find(|&m| !g.sim.is_crashed(m));
            if let Some(m) = talker {
                g.send_data(m, format!("replay-{seed}-{slice}").as_bytes());
            }
            if slice == 1 {
                g.register_member(100 + seed);
            }
        }
        g.run_for(Duration::from_secs(10));

        let mut trace = String::new();
        for e in g.sim.trace_events() {
            trace.push_str(&format!("{e:?}\n"));
        }
        (schedule, trace)
    }

    for seed in [3u64, 11] {
        let (schedule_a, trace_a) = run(seed);
        let (schedule_b, trace_b) = run(seed);
        assert_eq!(schedule_a, schedule_b, "seed {seed}: fault plans diverged");
        assert!(
            trace_a.lines().count() > 100,
            "seed {seed}: trace too thin to be a meaningful replay check"
        );
        if trace_a != trace_b {
            let diverged = trace_a
                .lines()
                .zip(trace_b.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b);
            let (at, (line_a, line_b)) = diverged.unwrap_or((
                trace_a.lines().count().min(trace_b.lines().count()),
                ("<run A ended>", "<run B ended>"),
            ));
            panic!(
                "seed {seed}: replay diverged at trace line {at}:\n  A: {line_a}\n  B: {line_b}\n\
                 ({} vs {} events)",
                trace_a.lines().count(),
                trace_b.lines().count(),
            );
        }
    }
}
