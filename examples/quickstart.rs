//! Quickstart: build a Mykil group, join two members, multicast data.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use mykil::group::GroupBuilder;
use mykil_net::Duration;

fn main() {
    println!("Mykil quickstart: one registration server, two areas");

    // A deterministic deployment: seed 42, two areas, test-sized keys.
    let mut group = GroupBuilder::new(42).areas(2).build();

    // Members register through the 7-step join protocol of Figure 3:
    // challenge-response with the registration server, then an
    // introduction to an area controller that issues keys and a ticket.
    let alice = group.register_member(1);
    let bob = group.register_member(2);
    group.settle();

    println!(
        "alice: client={:?} area={} keys={}",
        group.member(alice).client_id().unwrap(),
        group.member(alice).area().unwrap(),
        group.member(alice).key_count(),
    );
    println!(
        "bob  : client={:?} area={} keys={}",
        group.member(bob).client_id().unwrap(),
        group.member(bob).area().unwrap(),
        group.member(bob).key_count(),
    );

    // Alice multicasts: the payload is RC4-encrypted under a random key
    // K_r, K_r sealed under her area key; controllers re-seal K_r hop
    // by hop so Bob decrypts it in his own area (Figure 2).
    group.send_data(alice, b"hello, secure multicast world");
    group.run_for(Duration::from_secs(2));

    for payload in group.received_data(bob) {
        println!("bob received: {}", String::from_utf8_lossy(&payload));
    }

    let join = group.member(bob).timings;
    println!(
        "bob's join handshake took {} of simulated time",
        join.join_completed.unwrap() - join.join_started.unwrap()
    );
    println!(
        "total traffic: {} messages, {} bytes",
        group.stats().total_messages_sent(),
        group.stats().total_bytes_sent()
    );
}
