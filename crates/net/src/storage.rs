//! Stable storage: a per-node write-ahead log plus dual checkpoint
//! slots, behind the pluggable [`StableStore`] trait.
//!
//! Every simulated process owns one `Box<dyn StableStore>`, reachable
//! from any callback via [`Context::storage`](crate::Context::storage).
//! Three implementations ship:
//!
//! - [`SimStore`] — the in-memory simulated device (the historical
//!   `NodeStorage`, which remains as a type alias). Deterministic,
//!   allocation-only, with built-in lying-fsync and checkpoint-bit-rot
//!   fault hooks. This is the default backend for every simulation.
//! - [`FileStore`](crate::FileStore) — real files: an append-only WAL
//!   of checksummed length-prefixed records plus two ping-pong
//!   checkpoint slot files, with explicit sync barriers modeling
//!   `O_SYNC` (see `file_store.rs` for the on-disk layout).
//! - [`FaultyStore`] — a wrapper that injects lost-tail, torn-write,
//!   short-read, append-failure and checkpoint-corruption faults
//!   against *any* backend, subsuming `arm_lying_sync` /
//!   `corrupt_latest_checkpoint` so the whole fault matrix runs
//!   against real files too.
//!
//! The storage model mirrors a real fsync-based design:
//!
//! - [`StableStore::wal_append`] stages a record in the device cache;
//!   [`StableStore::sync`] makes the cached tail durable (protocol
//!   code normally uses the combined [`StableStore::wal_commit`]).
//! - [`StableStore::checkpoint`] writes a full-state snapshot into the
//!   older of two slots (classic ping-pong), records the WAL position
//!   it covers, and truncates the log prefix no longer needed by
//!   either slot. Slot metadata (sequence, WAL position) is kept apart
//!   from the payload, so payload corruption never forges a valid
//!   newer slot.
//! - [`StableStore::load`] is the recovery read path: it returns the
//!   newest *valid* checkpoint and the durable WAL suffix past it,
//!   stopping at the first record whose checksum fails.
//!
//! In [`SimStore`] checksums are modeled, not computed: a record or
//! slot carries a validity flag that the fault injector clears,
//! exactly as a real CRC mismatch would read back. Faults are
//! injected through [`StableStore::inject`] with a [`StoreFault`]
//! (the `torn` / `lost-tail` / `ckpt-corrupt` / `wal-short-read` /
//! `wal-append-fail` / `ckpt-slot-corrupt` chaos verbs route there).
//!
//! All buffers that may hold key material are wrapped in
//! [`SecretBytes`], which zeroizes on drop.

use mykil_crypto::ct;

/// A byte buffer that zeroizes its contents on drop. WAL records and
/// checkpoint payloads routinely contain wrapped keys and key-tree
/// snapshots; dropping them must not leave plaintext in freed memory
/// (same idiom as `mykil_crypto::keys::SymmetricKey`).
#[derive(Clone)]
pub struct SecretBytes(Vec<u8>);

impl SecretBytes {
    /// Wraps `bytes`, taking ownership.
    pub fn new(bytes: Vec<u8>) -> SecretBytes {
        SecretBytes(bytes)
    }

    /// Read access to the wrapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Length of the wrapped buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Drop for SecretBytes {
    fn drop(&mut self) {
        ct::zeroize(&mut self.0);
    }
}

/// Constant-time comparison: replica snapshots are compared in tests
/// and assertions, and a derived `PartialEq` would leak their contents
/// through timing.
impl PartialEq for SecretBytes {
    fn eq(&self, other: &SecretBytes) -> bool {
        ct::ct_eq(&self.0, &other.0)
    }
}

impl Eq for SecretBytes {}

impl std::fmt::Debug for SecretBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretBytes({} bytes)", self.0.len())
    }
}

/// A fault injectable into a [`StableStore`] via
/// [`StableStore::inject`]. Backends support different subsets; an
/// unsupported injection returns `false` and changes nothing (the
/// simulator surfaces it as a `storage-fault-unsupported` stat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Lying fsync: every `sync` until the next crash reports success
    /// without persisting; the crash discards the unsynced tail
    /// cleanly (a lying-fsync power loss).
    LostTail,
    /// Like [`StoreFault::LostTail`], except the crash leaves the
    /// first cached record *torn* — present but checksum-invalid, so
    /// recovery must detect and discard it.
    TornWrite,
    /// Bit-rot in the newest valid checkpoint slot's payload, applied
    /// immediately; recovery falls back to the other slot and a
    /// longer WAL replay.
    CorruptCheckpoint,
    /// Reads of the WAL come back short until healed: `load` returns
    /// the final record truncated to half its length. Models a
    /// partial read of the log tail; decoders must reject the stub.
    ShortRead,
    /// WAL appends are silently dropped until healed (a device that
    /// acknowledges writes it never performs).
    AppendFail,
    /// Bit-rot targeting a specific ping-pong slot (0 or 1),
    /// regardless of which is newest.
    CorruptSlot(u8),
}

/// What a recovering node reads back from stable storage.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Newest valid checkpoint payload, with its sequence number.
    // mykil-lint: allow(L002) -- recovery output, consumed and parsed
    // within the restart callback; at-rest copies stay SecretBytes.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Durable, checksum-valid WAL records past the checkpoint (all
    /// records when there is no checkpoint), oldest first.
    // mykil-lint: allow(L002) -- recovery output, consumed and parsed
    // within the restart callback; at-rest copies stay SecretBytes.
    pub wal: Vec<Vec<u8>>,
}

/// Pluggable stable storage for one node: WAL + ping-pong checkpoint
/// slots + crash/fault semantics. See the [module docs](self) for the
/// storage model and the implementations.
///
/// Object-safe: the simulator holds one `Box<dyn StableStore>` per
/// node and a factory can swap the backend per deployment
/// ([`Simulator::set_storage_factory`](crate::Simulator::set_storage_factory)).
pub trait StableStore: std::fmt::Debug + Send {
    /// Stages a WAL record in the device cache; not durable until
    /// [`Self::sync`] (use [`Self::wal_commit`] for the common
    /// append-then-fsync pattern).
    fn wal_append(&mut self, bytes: Vec<u8>);

    /// Flushes the cache to the durable log (an fsync barrier). Under
    /// an armed lying-sync fault this *reports* success but persists
    /// nothing — the lie is only observable through the next crash.
    fn sync(&mut self);

    /// Appends one record and syncs: the write-ahead discipline
    /// protocol code uses before acknowledging a state change.
    fn wal_commit(&mut self, bytes: Vec<u8>) {
        self.wal_append(bytes);
        self.sync();
    }

    /// Writes a full-state snapshot covering everything appended so
    /// far (implicitly syncing the WAL tail first) into the older of
    /// the two ping-pong slots, then truncates the WAL prefix neither
    /// slot needs any more.
    fn checkpoint(&mut self, payload: Vec<u8>);

    /// Appends one record that is durable but reads back
    /// checksum-invalid, as a torn write would leave it. The record
    /// occupies a WAL position; [`Self::load`] stops in front of it.
    /// Used by [`FaultyStore`] to realize torn-write crashes against
    /// any backend, and by tests crafting hostile logs.
    fn append_torn(&mut self, bytes: Vec<u8>);

    /// Recovery read path: newest valid checkpoint plus the durable,
    /// checksum-valid WAL suffix past it. A checksum-invalid (torn)
    /// record ends the replayable suffix.
    fn load(&self) -> Recovered;

    /// Injects `fault`; returns whether this backend supports that
    /// fault kind. Lying-sync faults are consumed by the next crash;
    /// read-path faults persist until [`Self::heal`].
    fn inject(&mut self, fault: StoreFault) -> bool;

    /// Disarms injected device faults (lying sync, short read, append
    /// failure) and honestly flushes the cache — the device comes
    /// back well-behaved. Already-written corruption stays.
    fn heal(&mut self);

    /// Applies crash semantics to the device cache and consumes any
    /// armed lying-sync fault; returns a stat label when an armed
    /// fault actually fired. Called by the simulator when the owning
    /// node crashes; tests may call it directly to model a crash.
    fn on_crash(&mut self) -> Option<&'static str>;

    /// Whether anything durable exists (a checkpoint or WAL record).
    fn has_durable_state(&self) -> bool;

    /// Number of `sync` calls (honest or lied-to) so far.
    fn sync_count(&self) -> u64;

    /// Number of checkpoints written so far.
    fn checkpoint_count(&self) -> u64;

    /// Back-compat spelling of [`StoreFault::LostTail`] /
    /// [`StoreFault::TornWrite`] injection.
    fn arm_lying_sync(&mut self, torn: bool) {
        self.inject(if torn {
            StoreFault::TornWrite
        } else {
            StoreFault::LostTail
        });
    }

    /// Back-compat spelling of [`StoreFault::CorruptCheckpoint`]
    /// injection.
    fn corrupt_latest_checkpoint(&mut self) {
        self.inject(StoreFault::CorruptCheckpoint);
    }
}

/// One durable WAL record. `valid` models the stored checksum: a torn
/// write reads back with `valid == false` and recovery discards it
/// (and, by append-only construction, everything after it).
#[derive(Debug, Clone)]
struct WalRecord {
    bytes: SecretBytes,
    valid: bool,
}

/// One checkpoint slot. Metadata (`seq`, `wal_pos`) lives outside the
/// corruptible payload: bit-rot can invalidate a slot but never promote
/// it.
#[derive(Debug, Clone)]
struct CheckpointSlot {
    /// Monotone checkpoint sequence; recovery picks the valid slot with
    /// the highest value.
    seq: u64,
    /// Absolute WAL position this snapshot covers: recovery replays
    /// durable records from here on.
    wal_pos: u64,
    payload: SecretBytes,
    /// Models the payload checksum verifying on read-back.
    valid: bool,
}

/// The armed lying-sync failure mode (consumed by the next crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArmedFault {
    None,
    /// Crash discards the whole unsynced tail.
    LostTail,
    /// Crash persists the first cached record torn (checksum-invalid)
    /// and discards the rest.
    TornWrite,
}

/// The historical name of [`SimStore`], kept so existing deployments
/// and tests read unchanged.
pub type NodeStorage = SimStore;

/// Simulated stable storage for one node. See the [module docs](self).
#[derive(Debug)]
pub struct SimStore {
    /// Durable log records; index 0 is absolute position `wal_base`.
    wal: Vec<WalRecord>,
    /// Absolute position of `wal[0]` (the prefix below it has been
    /// truncated away by checkpointing).
    wal_base: u64,
    /// Appended but not yet durable (device cache).
    cached: Vec<SecretBytes>,
    /// Ping-pong checkpoint slots.
    slots: [Option<CheckpointSlot>; 2],
    /// A checkpoint written while a lying sync is armed parks here
    /// instead of reaching a slot; the crash discards it, an honest
    /// [`StableStore::heal`] installs it.
    pending_checkpoint: Option<CheckpointSlot>,
    next_ckpt_seq: u64,
    armed: ArmedFault,
    /// Counters (syncs, commits, checkpoints) for harness assertions.
    syncs: u64,
    checkpoints: u64,
}

impl Default for SimStore {
    fn default() -> Self {
        SimStore::new()
    }
}

impl SimStore {
    /// Creates empty storage (factory-fresh disk).
    pub fn new() -> SimStore {
        SimStore {
            wal: Vec::new(),
            wal_base: 0,
            cached: Vec::new(),
            slots: [None, None],
            pending_checkpoint: None,
            next_ckpt_seq: 1,
            armed: ArmedFault::None,
            syncs: 0,
            checkpoints: 0,
        }
    }

    /// Absolute position one past the last record (durable or cached).
    fn wal_end(&self) -> u64 {
        self.wal_base + self.wal.len() as u64 + self.cached.len() as u64
    }

    /// See [`StableStore::wal_append`].
    pub fn wal_append(&mut self, bytes: Vec<u8>) {
        self.cached.push(SecretBytes::new(bytes));
    }

    /// See [`StableStore::sync`].
    pub fn sync(&mut self) {
        self.syncs += 1;
        if self.armed != ArmedFault::None {
            return;
        }
        for rec in self.cached.drain(..) {
            self.wal.push(WalRecord {
                bytes: rec,
                valid: true,
            });
        }
        if let Some(slot) = self.pending_checkpoint.take() {
            self.install_slot(slot);
        }
    }

    /// See [`StableStore::wal_commit`].
    pub fn wal_commit(&mut self, bytes: Vec<u8>) {
        self.wal_append(bytes);
        self.sync();
    }

    /// See [`StableStore::checkpoint`].
    pub fn checkpoint(&mut self, payload: Vec<u8>) {
        self.checkpoints += 1;
        let slot = CheckpointSlot {
            seq: self.next_ckpt_seq,
            wal_pos: self.wal_end(),
            payload: SecretBytes::new(payload),
            valid: true,
        };
        self.next_ckpt_seq += 1;
        if self.armed != ArmedFault::None {
            // The slot write sits in the cache with the WAL tail; both
            // are lost together if the crash comes first.
            self.pending_checkpoint = Some(slot);
            return;
        }
        self.sync();
        self.install_slot(slot);
    }

    /// Writes `slot` over the older of the two ping-pong slots, then
    /// truncates the WAL prefix neither slot needs any more.
    fn install_slot(&mut self, slot: CheckpointSlot) {
        let [slot0, slot1] = &self.slots;
        let target = match (slot0, slot1) {
            (None, _) => 0,
            (_, None) => 1,
            (Some(a), Some(b)) => usize::from(a.seq > b.seq),
        };
        if let Some(t) = self.slots.get_mut(target) {
            *t = Some(slot);
        }
        let keep_from = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.wal_pos)
            .min()
            .unwrap_or(self.wal_base);
        if keep_from > self.wal_base {
            let drop_n = ((keep_from - self.wal_base) as usize).min(self.wal.len());
            self.wal.drain(..drop_n);
            self.wal_base += drop_n as u64;
        }
    }

    /// See [`StableStore::load`].
    pub fn load(&self) -> Recovered {
        let best = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.valid)
            .max_by_key(|s| s.seq);
        let from = best.map(|s| s.wal_pos).unwrap_or(0).max(self.wal_base);
        let mut wal = Vec::new();
        for rec in self.wal.iter().skip((from - self.wal_base) as usize) {
            if !rec.valid {
                break;
            }
            wal.push(rec.bytes.as_slice().to_vec());
        }
        Recovered {
            checkpoint: best.map(|s| (s.seq, s.payload.as_slice().to_vec())),
            wal,
        }
    }

    /// Arms the lying-sync failure mode: every `sync` until the next
    /// crash reports success without persisting. `torn` selects whether
    /// the crash leaves the first cached record torn (checksum-invalid)
    /// or discards the tail cleanly.
    pub fn arm_lying_sync(&mut self, torn: bool) {
        self.armed = if torn {
            ArmedFault::TornWrite
        } else {
            ArmedFault::LostTail
        };
    }

    /// Flips the newest valid checkpoint slot's payload checksum to
    /// invalid (bit-rot). Takes effect immediately; with both slots
    /// populated, recovery falls back to the older one.
    pub fn corrupt_latest_checkpoint(&mut self) {
        if let Some(slot) = self
            .slots
            .iter_mut()
            .flatten()
            .filter(|s| s.valid)
            .max_by_key(|s| s.seq)
        {
            slot.valid = false;
        }
    }

    /// See [`StableStore::heal`].
    pub fn heal(&mut self) {
        self.armed = ArmedFault::None;
        self.sync();
    }

    /// See [`StableStore::sync_count`].
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// See [`StableStore::checkpoint_count`].
    pub fn checkpoint_count(&self) -> u64 {
        self.checkpoints
    }

    /// See [`StableStore::has_durable_state`].
    pub fn has_durable_state(&self) -> bool {
        !self.wal.is_empty() || self.slots.iter().any(|s| s.is_some())
    }
}

impl StableStore for SimStore {
    fn wal_append(&mut self, bytes: Vec<u8>) {
        SimStore::wal_append(self, bytes);
    }

    fn sync(&mut self) {
        SimStore::sync(self);
    }

    fn checkpoint(&mut self, payload: Vec<u8>) {
        SimStore::checkpoint(self, payload);
    }

    fn append_torn(&mut self, bytes: Vec<u8>) {
        self.wal.push(WalRecord {
            bytes: SecretBytes::new(bytes),
            valid: false,
        });
    }

    fn load(&self) -> Recovered {
        SimStore::load(self)
    }

    fn inject(&mut self, fault: StoreFault) -> bool {
        match fault {
            StoreFault::LostTail => {
                self.arm_lying_sync(false);
                true
            }
            StoreFault::TornWrite => {
                self.arm_lying_sync(true);
                true
            }
            StoreFault::CorruptCheckpoint => {
                self.corrupt_latest_checkpoint();
                true
            }
            StoreFault::CorruptSlot(i) => {
                if let Some(slot) = self.slots.get_mut(usize::from(i)).and_then(|s| s.as_mut()) {
                    slot.valid = false;
                }
                true
            }
            // Read-path and append-drop faults need the FaultyStore
            // wrapper; the bare sim device does not model them.
            StoreFault::ShortRead | StoreFault::AppendFail => false,
        }
    }

    fn heal(&mut self) {
        SimStore::heal(self);
    }

    fn on_crash(&mut self) -> Option<&'static str> {
        let armed = std::mem::replace(&mut self.armed, ArmedFault::None);
        let had_tail = !self.cached.is_empty() || self.pending_checkpoint.is_some();
        match armed {
            ArmedFault::TornWrite => {
                if !self.cached.is_empty() {
                    let first = self.cached.remove(0);
                    self.wal.push(WalRecord {
                        bytes: first,
                        valid: false,
                    });
                }
            }
            ArmedFault::LostTail | ArmedFault::None => {}
        }
        self.cached.clear();
        self.pending_checkpoint = None;
        match armed {
            ArmedFault::TornWrite if had_tail => Some("storage-torn-write"),
            ArmedFault::LostTail if had_tail => Some("storage-lost-tail"),
            _ => None,
        }
    }

    fn has_durable_state(&self) -> bool {
        SimStore::has_durable_state(self)
    }

    fn sync_count(&self) -> u64 {
        self.syncs
    }

    fn checkpoint_count(&self) -> u64 {
        self.checkpoints
    }
}

/// An unflushed write parked in the [`FaultyStore`] device cache, in
/// arrival order. Checkpoints park too: a lying sync swallows the slot
/// write together with the WAL tail.
#[derive(Debug)]
enum Parked {
    Rec(SecretBytes),
    Ckpt(SecretBytes),
}

/// A fault-injection layer over any [`StableStore`] backend.
///
/// `FaultyStore` owns the device cache itself: appends and (while a
/// lying sync is armed) checkpoints park in the wrapper and only reach
/// the inner store on an honest `sync`. That realizes the full
/// [`StoreFault`] matrix — including lost-tail and torn-write crashes
/// — against backends that have no native fault hooks, such as
/// [`FileStore`](crate::FileStore). Against [`SimStore`] it is
/// observationally equivalent to the built-in `arm_lying_sync` /
/// `corrupt_latest_checkpoint` hooks, modulo checkpoint sequence
/// numbers (the wrapper assigns them at flush time, the sim device at
/// call time; a crash can discard an assigned number).
#[derive(Debug)]
pub struct FaultyStore<S> {
    inner: S,
    /// The device cache: writes not yet flushed to `inner`.
    parked: Vec<Parked>,
    armed: ArmedFault,
    short_read: bool,
    append_fail: bool,
    syncs: u64,
    checkpoints: u64,
}

impl<S: StableStore> FaultyStore<S> {
    /// Wraps `inner` with no faults armed.
    pub fn new(inner: S) -> FaultyStore<S> {
        FaultyStore {
            inner,
            parked: Vec::new(),
            armed: ArmedFault::None,
            short_read: false,
            append_fail: false,
            syncs: 0,
            checkpoints: 0,
        }
    }

    /// Read access to the wrapped backend.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the backend, dropping any parked (unflushed) writes.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Flushes every parked write into the inner store, in order, and
    /// syncs it. A parked checkpoint lands at the WAL position of the
    /// records flushed before it, exactly where it would have landed
    /// had the device been honest.
    fn flush_parked(&mut self) {
        for entry in self.parked.drain(..) {
            match entry {
                Parked::Rec(bytes) => self.inner.wal_append(bytes.as_slice().to_vec()),
                Parked::Ckpt(payload) => self.inner.checkpoint(payload.as_slice().to_vec()),
            }
        }
        self.inner.sync();
    }
}

impl<S: StableStore> StableStore for FaultyStore<S> {
    fn wal_append(&mut self, bytes: Vec<u8>) {
        if self.append_fail {
            // Acknowledged and dropped; zeroize the buffer on the way out.
            drop(SecretBytes::new(bytes));
            return;
        }
        self.parked.push(Parked::Rec(SecretBytes::new(bytes)));
    }

    fn sync(&mut self) {
        self.syncs += 1;
        if self.armed != ArmedFault::None {
            return;
        }
        self.flush_parked();
    }

    fn checkpoint(&mut self, payload: Vec<u8>) {
        self.checkpoints += 1;
        if self.armed != ArmedFault::None {
            // Park at the current cache position. Only the most recent
            // parked checkpoint survives to a heal — a newer snapshot
            // written into the same lying cache supersedes the older
            // one, matching the sim device's single pending slot.
            self.parked.retain(|p| matches!(p, Parked::Rec(_)));
            self.parked.push(Parked::Ckpt(SecretBytes::new(payload)));
            return;
        }
        self.sync();
        self.inner.checkpoint(payload);
    }

    fn append_torn(&mut self, bytes: Vec<u8>) {
        self.inner.append_torn(bytes);
    }

    fn load(&self) -> Recovered {
        let mut r = self.inner.load();
        if self.short_read {
            if let Some(last) = r.wal.last_mut() {
                // The tail read comes back short: half the record.
                last.truncate(last.len() / 2);
            }
        }
        r
    }

    fn inject(&mut self, fault: StoreFault) -> bool {
        match fault {
            StoreFault::LostTail => {
                self.armed = ArmedFault::LostTail;
                true
            }
            StoreFault::TornWrite => {
                self.armed = ArmedFault::TornWrite;
                true
            }
            StoreFault::ShortRead => {
                self.short_read = true;
                true
            }
            StoreFault::AppendFail => {
                self.append_fail = true;
                true
            }
            StoreFault::CorruptCheckpoint | StoreFault::CorruptSlot(_) => {
                self.inner.inject(fault)
            }
        }
    }

    fn heal(&mut self) {
        self.armed = ArmedFault::None;
        self.short_read = false;
        self.append_fail = false;
        self.sync();
        self.inner.heal();
    }

    fn on_crash(&mut self) -> Option<&'static str> {
        let armed = std::mem::replace(&mut self.armed, ArmedFault::None);
        let had_tail = !self.parked.is_empty();
        if armed == ArmedFault::TornWrite {
            if let Some(first) = self.parked.iter().find_map(|p| match p {
                Parked::Rec(b) => Some(b.as_slice().to_vec()),
                Parked::Ckpt(_) => None,
            }) {
                self.inner.append_torn(first);
            }
        }
        self.parked.clear();
        let inner_stat = self.inner.on_crash();
        match armed {
            ArmedFault::TornWrite if had_tail => Some("storage-torn-write"),
            ArmedFault::LostTail if had_tail => Some("storage-lost-tail"),
            _ => inner_stat,
        }
    }

    fn has_durable_state(&self) -> bool {
        self.inner.has_durable_state()
    }

    fn sync_count(&self) -> u64 {
        self.syncs
    }

    fn checkpoint_count(&self) -> u64 {
        self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(s: &mut dyn StableStore) -> Option<&'static str> {
        s.on_crash()
    }

    #[test]
    fn commit_then_load_replays_everything() {
        let mut s = SimStore::new();
        s.wal_commit(vec![1]);
        s.wal_commit(vec![2]);
        crash(&mut s);
        let r = s.load();
        assert!(r.checkpoint.is_none());
        assert_eq!(r.wal, vec![vec![1], vec![2]]);
    }

    #[test]
    fn unsynced_tail_is_lost_even_without_faults() {
        let mut s = SimStore::new();
        s.wal_commit(vec![1]);
        s.wal_append(vec![2]); // never synced
        crash(&mut s);
        assert_eq!(s.load().wal, vec![vec![1]]);
    }

    #[test]
    fn checkpoint_covers_wal_and_truncates() {
        let mut s = SimStore::new();
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]);
        s.wal_commit(vec![2]);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert_eq!(r.wal, vec![vec![2]]);
        // Second checkpoint: the prefix below the older slot is gone,
        // but the newer slot still replays from its own position.
        s.checkpoint(vec![0xBB]);
        s.wal_commit(vec![3]);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((2, vec![0xBB])));
        assert_eq!(r.wal, vec![vec![3]]);
    }

    #[test]
    fn lying_sync_lost_tail_discards_synced_records_at_crash() {
        let mut s = SimStore::new();
        s.wal_commit(vec![1]);
        s.arm_lying_sync(false);
        s.wal_commit(vec![2]); // sync lies
        s.wal_commit(vec![3]);
        assert_eq!(crash(&mut s), Some("storage-lost-tail"));
        assert_eq!(s.load().wal, vec![vec![1]]);
        // The fault is consumed: post-restart commits are durable again.
        s.wal_commit(vec![4]);
        crash(&mut s);
        assert_eq!(s.load().wal, vec![vec![1], vec![4]]);
    }

    #[test]
    fn torn_write_leaves_invalid_record_that_load_discards() {
        let mut s = SimStore::new();
        s.wal_commit(vec![1]);
        s.arm_lying_sync(true);
        s.wal_commit(vec![2]);
        s.wal_commit(vec![3]);
        assert_eq!(crash(&mut s), Some("storage-torn-write"));
        // Record 2 is present-but-torn: the replayable suffix ends
        // before it, record 3 is gone entirely.
        assert_eq!(s.load().wal, vec![vec![1]]);
        assert_eq!(s.wal.len(), 2, "torn record occupies the log");
    }

    #[test]
    fn lying_sync_swallows_checkpoints_too() {
        let mut s = SimStore::new();
        s.checkpoint(vec![0xAA]);
        s.arm_lying_sync(false);
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xBB]); // parked in the cache
        assert_eq!(crash(&mut s), Some("storage-lost-tail"));
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert!(r.wal.is_empty());
    }

    #[test]
    fn heal_installs_the_parked_tail() {
        let mut s = SimStore::new();
        s.arm_lying_sync(false);
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]);
        s.heal();
        crash(&mut s);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert!(r.wal.is_empty(), "checkpoint covers the healed record");
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_slot() {
        let mut s = SimStore::new();
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]); // covers record 1
        s.wal_commit(vec![2]);
        s.checkpoint(vec![0xBB]); // covers records 1-2
        s.wal_commit(vec![3]);
        s.corrupt_latest_checkpoint();
        let r = s.load();
        // The older slot wins; its longer WAL suffix is still durable
        // because truncation only drops below the *older* position.
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert_eq!(r.wal, vec![vec![2], vec![3]]);
        // Both slots corrupt: full WAL replay from the base.
        s.corrupt_latest_checkpoint();
        let r = s.load();
        assert!(r.checkpoint.is_none());
        assert_eq!(r.wal, vec![vec![2], vec![3]]);
    }

    #[test]
    fn corruption_never_forges_a_newer_slot() {
        let mut s = SimStore::new();
        s.checkpoint(vec![0xAA]);
        s.checkpoint(vec![0xBB]);
        s.corrupt_latest_checkpoint();
        // seq 2 is invalid; seq 1 must be chosen even though slot 0
        // holds it (order of slots is irrelevant).
        assert_eq!(s.load().checkpoint, Some((1, vec![0xAA])));
    }

    #[test]
    fn secret_bytes_zeroize_on_drop() {
        // Indirect check: dropping the buffer leaves no panic and the
        // wrapper reports its contents faithfully before the drop.
        let sb = SecretBytes::new(vec![7; 32]);
        assert_eq!(sb.as_slice(), &[7; 32]);
        assert_eq!(sb.len(), 32);
        assert!(!sb.is_empty());
        drop(sb);
    }

    // ---- FaultyStore: the wrapper must reproduce the sim device's
    // fault semantics against an arbitrary backend. ----

    fn faulty() -> FaultyStore<SimStore> {
        FaultyStore::new(SimStore::new())
    }

    #[test]
    fn faulty_honest_path_delegates() {
        let mut f = faulty();
        f.wal_commit(vec![1]);
        f.checkpoint(vec![0xAA]);
        f.wal_commit(vec![2]);
        let r = f.load();
        assert_eq!(r.checkpoint.map(|(_, p)| p), Some(vec![0xAA]));
        assert_eq!(r.wal, vec![vec![2]]);
        assert!(f.has_durable_state());
    }

    #[test]
    fn faulty_lost_tail_matches_sim_semantics() {
        let mut f = faulty();
        f.wal_commit(vec![1]);
        f.inject(StoreFault::LostTail);
        f.wal_commit(vec![2]);
        f.wal_commit(vec![3]);
        assert_eq!(f.on_crash(), Some("storage-lost-tail"));
        assert_eq!(f.load().wal, vec![vec![1]]);
        f.wal_commit(vec![4]);
        f.on_crash();
        assert_eq!(f.load().wal, vec![vec![1], vec![4]]);
    }

    #[test]
    fn faulty_torn_write_tears_first_parked_record() {
        let mut f = faulty();
        f.wal_commit(vec![1]);
        f.inject(StoreFault::TornWrite);
        f.wal_commit(vec![2]);
        f.wal_commit(vec![3]);
        assert_eq!(f.on_crash(), Some("storage-torn-write"));
        // The torn record occupies a log position: a later commit sits
        // behind it and the replayable suffix still ends at record 1.
        f.wal_commit(vec![4]);
        assert_eq!(f.load().wal, vec![vec![1]]);
    }

    #[test]
    fn faulty_heal_installs_parked_checkpoint_at_original_position() {
        let mut f = faulty();
        f.inject(StoreFault::LostTail);
        f.wal_commit(vec![1]);
        f.checkpoint(vec![0xAA]); // parks after record 1
        f.wal_commit(vec![2]); // parks after the checkpoint
        f.heal();
        let r = f.load();
        assert_eq!(r.checkpoint.map(|(_, p)| p), Some(vec![0xAA]));
        assert_eq!(r.wal, vec![vec![2]], "post-checkpoint record replays");
    }

    #[test]
    fn faulty_short_read_truncates_the_tail_record() {
        let mut f = faulty();
        f.wal_commit(vec![1, 2, 3, 4]);
        f.wal_commit(vec![5, 6, 7, 8]);
        f.inject(StoreFault::ShortRead);
        let r = f.load();
        assert_eq!(r.wal, vec![vec![1, 2, 3, 4], vec![5, 6]]);
        f.heal();
        assert_eq!(f.load().wal, vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]]);
    }

    #[test]
    fn faulty_append_fail_drops_writes_until_heal() {
        let mut f = faulty();
        f.wal_commit(vec![1]);
        f.inject(StoreFault::AppendFail);
        f.wal_commit(vec![2]);
        assert_eq!(f.load().wal, vec![vec![1]]);
        f.heal();
        f.wal_commit(vec![3]);
        assert_eq!(f.load().wal, vec![vec![1], vec![3]]);
    }

    #[test]
    fn faulty_corruption_verbs_reach_the_inner_store() {
        let mut f = faulty();
        f.wal_commit(vec![1]);
        f.checkpoint(vec![0xAA]);
        f.wal_commit(vec![2]);
        f.checkpoint(vec![0xBB]);
        assert!(f.inject(StoreFault::CorruptCheckpoint));
        let r = f.load();
        assert_eq!(r.checkpoint.map(|(_, p)| p), Some(vec![0xAA]));
        assert!(f.inject(StoreFault::CorruptSlot(0)));
        assert!(f.inject(StoreFault::CorruptSlot(1)));
        assert!(f.load().checkpoint.is_none());
    }

    #[test]
    fn faulty_counters_mirror_sim_counting() {
        let mut a = SimStore::new();
        let mut b = faulty();
        for s in [&mut a as &mut dyn StableStore, &mut b as &mut dyn StableStore] {
            s.wal_commit(vec![1]);
            s.checkpoint(vec![2]);
            s.arm_lying_sync(false);
            s.wal_commit(vec![3]);
            s.checkpoint(vec![4]); // armed: no sync bump
            s.heal();
        }
        assert_eq!(a.sync_count(), b.sync_count());
        assert_eq!(a.checkpoint_count(), b.checkpoint_count());
    }
}
