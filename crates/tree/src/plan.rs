//! Rekey plans: the output of every tree mutation.
//!
//! A plan records *what changed* and *how each new key must be
//! distributed*: multicast entries encrypted under previous/child keys
//! (readable by exactly the members who should learn the new key) and
//! unicast key lists for members whose position changed. The protocol
//! layer serializes plans into wire messages; the benches use the size
//! accessors directly — this is the quantity plotted in Figures 8–10 of
//! the paper.

use crate::tree::NodeIdx;
use crate::{MemberId, KEY_LEN};
use mykil_crypto::keys::SymmetricKey;

/// Which key protects one multicast copy of a new key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncryptUnder {
    /// Encrypted under the *previous* version of the same node's key
    /// (join-style rekey: `E_{K_old}(K_new)`, readable by all existing
    /// holders).
    PreviousSelf,
    /// Encrypted under a child node's current key (leave-style rekey:
    /// readable by that child's subtree only).
    Child(NodeIdx),
}

/// One changed tree node and the encrypted copies that distribute it.
#[derive(Debug, Clone)]
pub struct KeyChange {
    /// The node whose key changed.
    pub node: NodeIdx,
    /// The fresh key value.
    pub new_key: SymmetricKey,
    /// One entry per encrypted copy in the multicast rekey message:
    /// the protecting key and its provenance.
    pub encryptions: Vec<(EncryptUnder, SymmetricKey)>,
}

/// Keys that must be delivered to one member over unicast
/// (a joining member's full path, or a displaced member's new leaf key).
#[derive(Debug, Clone)]
pub struct UnicastKeys {
    /// The recipient.
    pub member: MemberId,
    /// `(node, key)` pairs, leaf first, root last.
    pub keys: Vec<(NodeIdx, SymmetricKey)>,
}

/// The complete result of a join, leave, or batch rekey.
#[derive(Debug, Clone, Default)]
pub struct RekeyPlan {
    /// Changed keys, deepest node first, root last.
    pub changes: Vec<KeyChange>,
    /// Per-member unicast deliveries.
    pub unicasts: Vec<UnicastKeys>,
}

impl RekeyPlan {
    /// Total encrypted key copies in the multicast rekey message.
    pub fn encryption_count(&self) -> usize {
        self.changes.iter().map(|c| c.encryptions.len()).sum()
    }

    /// Size in bytes of the multicast rekey message body
    /// (`encryption_count · KEY_LEN`, the quantity plotted in the
    /// paper's Figures 8–10).
    pub fn multicast_bytes(&self) -> usize {
        self.encryption_count() * KEY_LEN
    }

    /// Size in bytes of all unicast payloads (key material only).
    pub fn unicast_bytes(&self) -> usize {
        self.unicasts
            .iter()
            .map(|u| u.keys.len() * KEY_LEN)
            .sum()
    }

    /// Number of distinct keys that changed.
    pub fn keys_changed(&self) -> usize {
        self.changes.len()
    }

    /// True when nothing changed (e.g. the last member left).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.unicasts.is_empty()
    }

    /// Merges another plan into this one, concatenating changes and
    /// unicasts (used to combine an area-key update with tree updates).
    pub fn extend(&mut self, other: RekeyPlan) {
        self.changes.extend(other.changes);
        self.unicasts.extend(other.unicasts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(label: &str) -> SymmetricKey {
        SymmetricKey::from_label(label)
    }

    fn change(node: usize, n_enc: usize) -> KeyChange {
        KeyChange {
            node: NodeIdx(node),
            new_key: key(&format!("new-{node}")),
            encryptions: (0..n_enc)
                .map(|i| (EncryptUnder::Child(NodeIdx(100 + i)), key(&format!("c{i}"))))
                .collect(),
        }
    }

    #[test]
    fn size_accounting() {
        let plan = RekeyPlan {
            changes: vec![change(1, 2), change(2, 3)],
            unicasts: vec![UnicastKeys {
                member: MemberId(9),
                keys: vec![(NodeIdx(1), key("a")), (NodeIdx(2), key("b"))],
            }],
        };
        assert_eq!(plan.encryption_count(), 5);
        assert_eq!(plan.multicast_bytes(), 5 * KEY_LEN);
        assert_eq!(plan.unicast_bytes(), 2 * KEY_LEN);
        assert_eq!(plan.keys_changed(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan() {
        let plan = RekeyPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.multicast_bytes(), 0);
        assert_eq!(plan.unicast_bytes(), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = RekeyPlan {
            changes: vec![change(1, 1)],
            unicasts: vec![],
        };
        let b = RekeyPlan {
            changes: vec![change(2, 2)],
            unicasts: vec![UnicastKeys {
                member: MemberId(3),
                keys: vec![(NodeIdx(5), key("x"))],
            }],
        };
        a.extend(b);
        assert_eq!(a.keys_changed(), 2);
        assert_eq!(a.unicasts.len(), 1);
    }
}
