//! Protocol-level error type.

use std::fmt;

/// Errors raised while running the Mykil protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A message failed to parse.
    Malformed(&'static str),
    /// A cryptographic check failed (decryption, MAC, signature, nonce).
    CryptoFailure(&'static str),
    /// The client's authorization information was rejected.
    NotAuthorized,
    /// A ticket was expired, forged, or bound to a different device.
    InvalidTicket(&'static str),
    /// A replayed message was detected (stale timestamp or reused nonce).
    Replay,
    /// The peer needed for this step is unreachable.
    PeerUnreachable(&'static str),
    /// The protocol state machine received a message it did not expect.
    UnexpectedMessage(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Malformed(what) => write!(f, "malformed message: {what}"),
            ProtocolError::CryptoFailure(what) => write!(f, "cryptographic check failed: {what}"),
            ProtocolError::NotAuthorized => write!(f, "authorization rejected"),
            ProtocolError::InvalidTicket(why) => write!(f, "invalid ticket: {why}"),
            ProtocolError::Replay => write!(f, "replayed message detected"),
            ProtocolError::PeerUnreachable(who) => write!(f, "peer unreachable: {who}"),
            ProtocolError::UnexpectedMessage(what) => write!(f, "unexpected message: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<mykil_crypto::CryptoError> for ProtocolError {
    fn from(_: mykil_crypto::CryptoError) -> Self {
        ProtocolError::CryptoFailure("crypto primitive error")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ProtocolError::Malformed("join1").to_string().contains("join1"));
        assert!(ProtocolError::InvalidTicket("expired").to_string().contains("expired"));
        assert!(ProtocolError::Replay.to_string().contains("replay"));
    }

    #[test]
    fn converts_from_crypto_error() {
        let e: ProtocolError = mykil_crypto::CryptoError::PaddingError.into();
        assert!(matches!(e, ProtocolError::CryptoFailure(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<ProtocolError>();
    }
}
