//! The case-running engine behind the `proptest!` macro.

/// Per-test configuration (mirrors the fields of
/// `proptest::test_runner::Config` this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented,
    /// so this knob has no effect.
    pub max_shrink_iters: u32,
    /// Maximum number of `prop_assume!` rejections tolerated before the
    /// test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Upstream defaults to 256; 64 keeps the offline suite fast
            // while still exercising schedule diversity.
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic RNG driving generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Runs the cases of one property test.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Runs `case` until `config.cases` cases pass; panics on the first
    /// failure. The RNG seed for case `i` is derived from the test name
    /// and `i`, so failures reproduce exactly on re-run.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let name_seed = fnv1a(self.name.as_bytes());
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::from_seed(name_seed ^ index.wrapping_mul(0x51_7c_c1_b7_27_22_0a_95));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest {}: too many prop_assume! rejections ({rejected})",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {} (after {} passing): {}",
                        self.name, index, passed, msg
                    );
                }
            }
            index += 1;
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_cases() {
        let mut seen = 0;
        let mut runner = TestRunner::new(ProptestConfig::with_cases(17), "count");
        runner.run(|_| {
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 17);
    }

    #[test]
    fn rejects_do_not_count_as_cases() {
        let mut attempts = 0u32;
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "rej");
        runner.run(|rng| {
            attempts += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(attempts > 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(3), "fail");
        runner.run(|_| Err(TestCaseError::fail("boom".into())));
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let collect = |name: &'static str| {
            let mut vals = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8), name);
            runner.run(|rng| {
                vals.push(rng.next_u64());
                Ok(())
            });
            vals
        };
        assert_eq!(collect("same"), collect("same"));
        assert_ne!(collect("same"), collect("other"));
    }
}
