//! Baseline key-management protocols for comparison with Mykil.
//!
//! The paper's evaluation (Section V, Figures 8–10) compares Mykil
//! against the two protocol families it descends from:
//!
//! - [`iolus::IolusGroup`] — group-based hierarchy (Mittra, SIGCOMM'97):
//!   flat subgroups with a pairwise key per member; a leave costs one
//!   re-encrypted subgroup key *per member*.
//! - [`lkh::FlatLkh`] — key-based hierarchy (Wong/Gouda/Lam,
//!   SIGCOMM'98): one global auxiliary-key tree over all members; a
//!   leave costs `O(arity·log n)` encrypted keys in a single multicast.
//! - [`mykil_model::MykilModel`] — the algorithmic core of Mykil (areas
//!   each running their own tree), used for large-scale byte accounting
//!   where simulating 100,000 protocol nodes is unnecessary: the
//!   figures measure *key bytes*, which depend only on the tree
//!   algebra.
//!
//! All three implement [`KeyManager`], so the benches sweep them
//! uniformly. Traffic is counted in [`RekeyTraffic`] units identical to
//! the paper's arithmetic (16 bytes per encrypted key).

pub mod iolus;
pub mod lkh;
pub mod mykil_model;
pub mod traffic;

pub use iolus::IolusGroup;
pub use lkh::FlatLkh;
pub use mykil_model::{ColdAreaModel, MykilModel};
pub use traffic::RekeyTraffic;

use mykil_tree::MemberId;
use rand::RngCore;

/// A group key manager under test: the operations the figures sweep.
pub trait KeyManager {
    /// Admits a member, returning the rekey traffic generated.
    fn join(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic;

    /// Removes a member, returning the rekey traffic generated.
    fn leave(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic;

    /// Removes several members as one aggregated rekey (protocols
    /// without aggregation fall back to sequential leaves).
    fn batch_leave(&mut self, members: &[MemberId], rng: &mut dyn RngCore) -> RekeyTraffic {
        let mut total = RekeyTraffic::default();
        for &m in members {
            total += self.leave(m, rng);
        }
        total
    }

    /// Current member count.
    fn member_count(&self) -> usize;

    /// Symmetric-key bytes stored by one (typical) member
    /// (Section V-A).
    fn member_storage_bytes(&self) -> u64;

    /// Symmetric-key bytes stored by the busiest controller
    /// (Section V-A).
    fn controller_storage_bytes(&self) -> u64;

    /// Protocol name for reports.
    fn name(&self) -> &'static str;
}

/// Populates a manager with `n` members (ids `0..n`), discarding the
/// setup traffic.
pub fn populate<M: KeyManager + ?Sized>(manager: &mut M, n: u64, rng: &mut dyn RngCore) {
    for m in 0..n {
        let _ = manager.join(MemberId(m), rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    /// All three managers agree on basic bookkeeping.
    #[test]
    fn managers_track_membership() {
        let mut rng = Drbg::from_seed(1);
        let mut managers: Vec<Box<dyn KeyManager>> = vec![
            Box::new(IolusGroup::new(16)),
            Box::new(FlatLkh::new(mykil_tree::TreeConfig::binary(), &mut rng)),
            Box::new(MykilModel::new(4, mykil_tree::TreeConfig::binary(), &mut rng)),
        ];
        for mgr in managers.iter_mut() {
            populate(mgr.as_mut(), 50, &mut rng);
            assert_eq!(mgr.member_count(), 50, "{}", mgr.name());
            let t = mgr.leave(MemberId(25), &mut rng);
            assert!(t.total_key_bytes() > 0, "{}", mgr.name());
            assert_eq!(mgr.member_count(), 49, "{}", mgr.name());
        }
    }

    /// The ordering the paper reports for a leave event:
    /// LKH ≈ Mykil ≪ Iolus at realistic sizes.
    #[test]
    fn leave_cost_ordering_matches_figure8() {
        let mut rng = Drbg::from_seed(2);
        let n = 2000u64;
        let mut iolus = IolusGroup::new(16);
        let mut lkh = FlatLkh::new(mykil_tree::TreeConfig::binary(), &mut rng);
        let mut mykil = MykilModel::new(8, mykil_tree::TreeConfig::binary(), &mut rng);
        populate(&mut iolus, n, &mut rng);
        populate(&mut lkh, n, &mut rng);
        populate(&mut mykil, n, &mut rng);

        let i = iolus.leave(MemberId(500), &mut rng).total_key_bytes();
        let l = lkh.leave(MemberId(500), &mut rng).total_key_bytes();
        let m = mykil.leave(MemberId(500), &mut rng).total_key_bytes();
        assert!(m <= l, "mykil {m} vs lkh {l}");
        assert!(l * 20 < i, "lkh {l} vs iolus {i}");
    }
}
