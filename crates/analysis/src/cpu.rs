//! CPU requirements on a leave event (Section V-B of the paper).
//!
//! When a member leaves, how many members must install how many fresh
//! keys? The paper's binary-tree arithmetic for 100,000 members:
//! in LKH 50,000 members update one key, 25,000 update two, 12,500
//! update three, …; in Mykil the same geometric series applies within
//! one 5,000-member area (2,500 / 1,250 / 625 / …); in Iolus every
//! member of the area updates exactly one key.

use crate::Params;

/// One bucket of the update distribution: `members` members each
/// install `keys_updated` fresh keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateBucket {
    /// Number of keys a member in this bucket installs.
    pub keys_updated: u64,
    /// How many members fall in this bucket.
    pub members: u64,
}

/// Iolus: every member of the affected subgroup installs the one new
/// subgroup key.
pub fn iolus_leave_distribution(p: &Params) -> Vec<UpdateBucket> {
    vec![UpdateBucket {
        keys_updated: 1,
        members: p.area_size().saturating_sub(1),
    }]
}

/// Geometric distribution over a tree with `leaves` leaves: members in
/// the sibling subtree at depth `d` (from the leaf) install `d` keys.
fn tree_leave_distribution(p: &Params, leaves: u64) -> Vec<UpdateBucket> {
    let mut out = Vec::new();
    let mut remaining = leaves.saturating_sub(1);
    let h = p.tree_height(leaves);
    let mut share = leaves;
    for depth in 1..=h {
        // Members whose deepest refreshed ancestor is at height `depth`:
        // the (arity-1)/arity fraction of the current share.
        share /= p.arity;
        let bucket = (share * (p.arity - 1)).min(remaining);
        let members = if depth == h { remaining } else { bucket };
        if members == 0 {
            continue;
        }
        out.push(UpdateBucket {
            keys_updated: depth,
            members,
        });
        remaining -= members;
        if remaining == 0 {
            break;
        }
    }
    out
}

/// LKH: geometric series over the whole group.
pub fn lkh_leave_distribution(p: &Params) -> Vec<UpdateBucket> {
    tree_leave_distribution(p, p.members)
}

/// Mykil: geometric series confined to the departed member's area;
/// members of other areas do nothing.
pub fn mykil_leave_distribution(p: &Params) -> Vec<UpdateBucket> {
    tree_leave_distribution(p, p.area_size())
}

/// Total key installations across all members (the aggregate CPU cost).
pub fn total_updates(dist: &[UpdateBucket]) -> u64 {
    dist.iter().map(|b| b.keys_updated * b.members).sum()
}

/// Members affected at all by the leave.
pub fn members_affected(dist: &[UpdateBucket]) -> u64 {
    dist.iter().map(|b| b.members).sum()
}

/// Mean keys installed per *affected* member.
pub fn mean_updates_per_affected(dist: &[UpdateBucket]) -> f64 {
    let m = members_affected(dist);
    if m == 0 {
        0.0
    } else {
        total_updates(dist) as f64 / m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::paper()
    }

    #[test]
    fn iolus_touches_whole_area_once() {
        let d = iolus_leave_distribution(&p());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].keys_updated, 1);
        assert_eq!(d[0].members, 4_999);
        assert_eq!(total_updates(&d), 4_999);
    }

    #[test]
    fn lkh_matches_paper_series() {
        // Paper: 50,000 update one key, 25,000 two, 12,500 three, ...
        let d = lkh_leave_distribution(&p());
        assert_eq!(d[0], UpdateBucket { keys_updated: 1, members: 50_000 });
        assert_eq!(d[1], UpdateBucket { keys_updated: 2, members: 25_000 });
        assert_eq!(d[2], UpdateBucket { keys_updated: 3, members: 12_500 });
        assert_eq!(members_affected(&d), 99_999);
    }

    #[test]
    fn mykil_series_confined_to_area() {
        // Paper: 2,500 update one, 1,250 two, 625 three, ~313 four, ...
        let d = mykil_leave_distribution(&p());
        assert_eq!(d[0], UpdateBucket { keys_updated: 1, members: 2_500 });
        assert_eq!(d[1], UpdateBucket { keys_updated: 2, members: 1_250 });
        assert_eq!(d[2], UpdateBucket { keys_updated: 3, members: 625 });
        assert_eq!(members_affected(&d), 4_999);
    }

    #[test]
    fn ordering_iolus_le_mykil_lt_lkh_total_work() {
        // Aggregate work: Iolus minimal per member but touches everyone
        // in the area once; Mykil slightly more; LKH far more.
        let i = total_updates(&iolus_leave_distribution(&p()));
        let m = total_updates(&mykil_leave_distribution(&p()));
        let l = total_updates(&lkh_leave_distribution(&p()));
        assert!(i <= m, "{i} {m}");
        assert!(m < l, "{m} {l}");
    }

    #[test]
    fn mean_updates_near_two_for_binary() {
        // Σ d/2^d = 2: the mean of the geometric series.
        let d = lkh_leave_distribution(&p());
        let mean = mean_updates_per_affected(&d);
        assert!((1.8..2.2).contains(&mean), "mean={mean}");
    }

    #[test]
    fn distribution_conserves_members() {
        for areas in [1, 2, 5, 10, 20] {
            let p = p().with_areas(areas);
            let d = mykil_leave_distribution(&p);
            assert_eq!(
                members_affected(&d),
                p.area_size() - 1,
                "areas={areas}"
            );
        }
    }

    #[test]
    fn quad_tree_reduces_depth_buckets() {
        let quad = Params { arity: 4, ..p() };
        let d = lkh_leave_distribution(&quad);
        // First bucket: 3/4 of members update one key.
        assert_eq!(d[0].keys_updated, 1);
        assert_eq!(d[0].members, 75_000);
        assert!(d.len() <= 9);
    }

    #[test]
    fn empty_for_singleton_group() {
        let tiny = Params {
            members: 1,
            areas: 1,
            ..p()
        };
        let d = lkh_leave_distribution(&tiny);
        assert_eq!(members_affected(&d), 0);
        assert_eq!(mean_updates_per_affected(&d), 0.0);
    }
}
