//! Million-member scale gate (ISSUEs 7 and 8).
//!
//! Runs the hybrid hot/cold scenarios under the counting allocator and
//! the scale invariant checker, and reports events/sec, wall time and
//! peak live-heap bytes (a deterministic RSS proxy) as machine-readable
//! JSON:
//!
//! - flash-crowd join + mass-leave (`BENCH_scale.json`), and
//! - with `--mobility`, the mobility-storm scenarios — inter-area
//!   ticket rejoins under a generated chaos fault plan against durable
//!   controllers (`BENCH_mobility.json`), including the per-fault
//!   recovery envelope (mean/p50/p99 recovery micros, degraded-window
//!   bytes).
//!
//! ```text
//! scalegate                  # flash-crowd scenarios, run and print
//! scalegate --mobility       # mobility-storm scenarios instead
//! scalegate --smoke          # smoke scenario only (bounded CI wall time)
//! scalegate --write          # run and (re)write the matching BENCH json
//! scalegate --check <path>   # run and fail (exit 1) on regression
//!           --tolerance 15   #   banded-metric tolerance, percent
//!           --out <path>     #   also dump the fresh JSON (CI artifact)
//!           --dump-dir <dir> #   on failure, write the fault plan and
//!                            #   per-area ledger dump there (CI artifacts)
//! ```
//!
//! Gate semantics mirror `perfgate` (DESIGN.md §10): event counts,
//! rekey bytes, move counts and degraded-window bytes are
//! bit-deterministic and gated exactly; peak heap, calibrated
//! events/sec and the recovery-time percentiles are gated at the
//! tolerance (the ISSUE 8 bar: fail on >15% p99 recovery regression).

use mykil::invariants::check_scale;
use mykil::scale::{MobilityReport, ScaleConfig, ScaleGroup};
use mykil_bench::alloc_track::{peak_bytes, reset_peak, CountingAllocator};
use mykil_crypto::sha256::Sha256;
use mykil_net::{Duration, FaultPlan};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One scenario's measurements. Flash-crowd scenarios leave the
/// mobility block `None`; storm scenarios fill it.
struct Sample {
    name: &'static str,
    members: u64,
    areas: usize,
    events: u64,
    events_per_sec: f64,
    wall_secs: f64,
    peak_heap_bytes: u64,
    rekey_multicast_bytes: u64,
    rekey_unicast_bytes: u64,
    mobility: Option<MobilityBlock>,
}

/// The recovery section of a mobility sample.
struct MobilityBlock {
    moves: u64,
    faults: u64,
    crashes: u64,
    recovery_mean_micros: u64,
    recovery_p50_micros: u64,
    recovery_p99_micros: u64,
    degraded_bytes: u64,
    /// Serialized fault plan + per-area ledger, for failure artifacts.
    plan_text: String,
    ledger_dump: String,
}

/// One mobility-storm scenario's shape.
struct StormSpec {
    name: &'static str,
    cfg: ScaleConfig,
    moves: u64,
    episodes: usize,
    plan_seed: u64,
    horizon_ms: u64,
}

fn smoke_storm() -> StormSpec {
    StormSpec {
        name: "mobility_storm_100k",
        cfg: ScaleConfig {
            members: 100_000,
            areas: 100,
            ..ScaleConfig::mobility_million()
        },
        moves: 10_000,
        episodes: 12,
        plan_seed: 42,
        horizon_ms: 300,
    }
}

/// The ISSUE 8 acceptance scenario: 1M members / 1,000 areas, 100k
/// inter-area moves, 50+ injected faults (crashes, partitions, storage).
fn full_storm() -> StormSpec {
    StormSpec {
        name: "mobility_storm_1m",
        cfg: ScaleConfig::mobility_million(),
        moves: 100_000,
        episodes: 20,
        plan_seed: 42,
        horizon_ms: 2_000,
    }
}

/// Drives one flash-crowd join + mass-leave to completion with the
/// invariant checker auditing both quiescent points; any violation is
/// fatal (the gate must not publish numbers from a broken run).
fn run_scenario(name: &'static str, cfg: ScaleConfig) -> Sample {
    reset_peak();
    let t0 = Instant::now();
    let mut g = ScaleGroup::new(cfg);
    if let Err(stall) = g.run_flash_crowd_join() {
        eprintln!("{name}: {stall}");
        std::process::exit(2);
    }
    let join_violations = check_scale(&g);
    if !join_violations.is_empty() {
        eprintln!("{name}: invariant violations after join: {join_violations:?}");
        std::process::exit(2);
    }
    if g.live_members() != cfg.members {
        eprintln!(
            "{name}: {} members live after join, expected {}",
            g.live_members(),
            cfg.members
        );
        std::process::exit(2);
    }
    if let Err(stall) = g.run_mass_leave() {
        eprintln!("{name}: {stall}");
        std::process::exit(2);
    }
    let leave_violations = check_scale(&g);
    if !leave_violations.is_empty() {
        eprintln!("{name}: invariant violations after leave: {leave_violations:?}");
        std::process::exit(2);
    }
    if g.live_members() != 0 {
        eprintln!("{name}: {} members left behind after mass leave", g.live_members());
        std::process::exit(2);
    }
    let wall = t0.elapsed().as_secs_f64();
    let events = g.sim.events_processed();
    Sample {
        name,
        members: cfg.members,
        areas: cfg.areas,
        events,
        events_per_sec: events as f64 / wall,
        wall_secs: wall,
        peak_heap_bytes: peak_bytes(),
        rekey_multicast_bytes: g.sim.stats().counter("scale-rekey-multicast-bytes"),
        rekey_unicast_bytes: g.sim.stats().counter("scale-rekey-unicast-bytes"),
        mobility: None,
    }
}

/// Per-area ledger dump: enough to diff a failing run against a
/// healthy one without re-running it.
fn dump_ledger(g: &ScaleGroup) -> String {
    let mut out = String::from(
        "# area live joins hot_leaves cold_leaves moves_out moves_in epoch multicast_bytes unicast_bytes\n",
    );
    for (area, c) in g.controllers().enumerate() {
        let t = c.cold().traffic();
        out.push_str(&format!(
            "{area} {} {} {} {} {} {} {} {} {}\n",
            c.live_members(),
            c.joins(),
            c.hot_leaves(),
            c.cold_leaves(),
            c.moves_out(),
            c.moves_in(),
            c.cold().epoch(),
            t.multicast_bytes,
            t.unicast_bytes,
        ));
    }
    out
}

fn write_failure_artifacts(dump_dir: Option<&str>, name: &str, plan: &FaultPlan, ledger: &str) {
    let Some(dir) = dump_dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create dump dir {dir}: {e}");
        return;
    }
    for (suffix, body) in [("plan.txt", plan.serialize()), ("ledger.txt", ledger.to_string())] {
        let path = format!("{dir}/{name}.{suffix}");
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote failure artifact {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

/// Drives one seeded mobility storm under its generated fault plan,
/// audits the quiescent point, and collects the recovery envelope. A
/// stall or invariant violation dumps the plan + ledger (when
/// `--dump-dir` is given) and aborts the gate.
fn run_storm(spec: &StormSpec, dump_dir: Option<&str>) -> Sample {
    reset_peak();
    let t0 = Instant::now();
    let mut g = ScaleGroup::new(spec.cfg);
    g.seed_cold_population();
    let plan = g.mobility_fault_plan(
        spec.episodes,
        spec.plan_seed,
        Duration::from_millis(spec.horizon_ms),
    );
    let report: MobilityReport = match g.run_mobility_storm(spec.moves, &plan) {
        Ok(r) => r,
        Err(stall) => {
            eprintln!("{}: {stall}", spec.name);
            write_failure_artifacts(dump_dir, spec.name, &plan, &dump_ledger(&g));
            std::process::exit(2);
        }
    };
    let violations = check_scale(&g);
    if !violations.is_empty() {
        eprintln!("{}: invariant violations after storm:", spec.name);
        for v in &violations {
            eprintln!("  {v}");
        }
        write_failure_artifacts(dump_dir, spec.name, &plan, &dump_ledger(&g));
        std::process::exit(2);
    }
    if report.moves != spec.moves {
        eprintln!(
            "{}: {} moves completed, expected {}",
            spec.name, report.moves, spec.moves
        );
        write_failure_artifacts(dump_dir, spec.name, &plan, &dump_ledger(&g));
        std::process::exit(2);
    }
    let wall = t0.elapsed().as_secs_f64();
    let events = g.sim.events_processed();
    Sample {
        name: spec.name,
        members: spec.cfg.members,
        areas: spec.cfg.areas,
        events,
        events_per_sec: events as f64 / wall,
        wall_secs: wall,
        peak_heap_bytes: peak_bytes(),
        rekey_multicast_bytes: g.sim.stats().counter("scale-rekey-multicast-bytes"),
        rekey_unicast_bytes: g.sim.stats().counter("scale-rekey-unicast-bytes"),
        mobility: Some(MobilityBlock {
            moves: report.moves,
            faults: report.faults_applied,
            crashes: report.crashes,
            recovery_mean_micros: report.mean_recovery_micros(),
            recovery_p50_micros: report.recovery_percentile_micros(0.50),
            recovery_p99_micros: report.recovery_percentile_micros(0.99),
            degraded_bytes: report.degraded_bytes_total(),
            plan_text: plan.serialize(),
            ledger_dump: dump_ledger(&g),
        }),
    }
}

/// Host-speed calibration, same unit as perfgate's: SHA-256 digests
/// over a 4 KiB buffer per second. Measured as the best of several
/// short rounds — the max is robust against transient frequency dips
/// that would otherwise inflate the expected-throughput band.
fn calibrate() -> f64 {
    let buf = [0x5Au8; 4096];
    let mut acc = 0u64;
    const ITERS: u64 = 2000;
    const ROUNDS: usize = 5;
    let mut best = 0.0f64;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            acc = acc.wrapping_add(u64::from(Sha256::digest(&buf)[0]));
        }
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(ITERS as f64 / dt);
    }
    assert!(acc != u64::MAX);
    best
}

fn render_json(samples: &[Sample], calibration: f64, mobility: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    if mobility {
        out.push_str("  \"description\": \"mobility-storm scale gate; refresh with: cargo run --release -p mykil-bench --bin scalegate -- --mobility --write\",\n");
    } else {
        out.push_str("  \"description\": \"hybrid hot/cold scale gate; refresh with: cargo run --release -p mykil-bench --bin scalegate -- --write\",\n");
    }
    out.push_str(&format!(
        "  \"calibration_sha256_4k_per_sec\": {calibration:.1},\n"
    ));
    out.push_str("  \"scenarios\": {\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"members\": {}, \"areas\": {}, \"events\": {}, \"events_per_sec\": {:.1}, \"wall_secs\": {:.3}, \"peak_heap_bytes\": {}, \"rekey_multicast_bytes\": {}, \"rekey_unicast_bytes\": {}",
            s.name,
            s.members,
            s.areas,
            s.events,
            s.events_per_sec,
            s.wall_secs,
            s.peak_heap_bytes,
            s.rekey_multicast_bytes,
            s.rekey_unicast_bytes,
        ));
        if let Some(m) = &s.mobility {
            out.push_str(&format!(
                ", \"moves\": {}, \"faults\": {}, \"crashes\": {}, \"recovery_mean_micros\": {}, \"recovery_p50_micros\": {}, \"recovery_p99_micros\": {}, \"degraded_window_bytes\": {}",
                m.moves,
                m.faults,
                m.crashes,
                m.recovery_mean_micros,
                m.recovery_p50_micros,
                m.recovery_p99_micros,
                m.degraded_bytes,
            ));
        }
        out.push_str(&format!(
            " }}{}\n",
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Extracts `"key": <number>` from `text` scoped to the object that
/// follows `"scope"` (a flat scan is enough for the format we emit).
fn json_num(text: &str, scope: &str, key: &str) -> Option<f64> {
    let start = match scope.is_empty() {
        true => 0,
        false => text.find(&format!("\"{scope}\""))?,
    };
    let scoped = &text[start..];
    let end = scoped.find('}').unwrap_or(scoped.len());
    let scoped = &scoped[..end];
    let kpos = scoped.find(&format!("\"{key}\""))?;
    let after = &scoped[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let numlen = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..numlen].parse().ok()
}

struct Regression {
    what: String,
    base: f64,
    fresh: f64,
    limit_pct: f64,
}

/// Compares fresh samples against a committed baseline.
fn check(baseline: &str, samples: &[Sample], calibration: f64, tol_pct: f64) -> Vec<Regression> {
    let mut bad = Vec::new();
    let base_calib = json_num(baseline, "", "calibration_sha256_4k_per_sec").unwrap_or(calibration);
    for s in samples {
        let Some(base_events) = json_num(baseline, s.name, "events") else {
            bad.push(Regression {
                what: format!("{}: missing from baseline", s.name),
                base: 0.0,
                fresh: 0.0,
                limit_pct: 0.0,
            });
            continue;
        };

        // Event counts, rekey bytes, move counts, fault counts and
        // degraded-window bytes are bit-deterministic for a fixed
        // seed: any drift is a behavior change, not noise.
        if s.events as f64 != base_events {
            bad.push(Regression {
                what: format!("{}: events (deterministic)", s.name),
                base: base_events,
                fresh: s.events as f64,
                limit_pct: 0.0,
            });
        }
        let mut exact: Vec<(&'static str, f64)> = vec![
            ("rekey_multicast_bytes", s.rekey_multicast_bytes as f64),
            ("rekey_unicast_bytes", s.rekey_unicast_bytes as f64),
        ];
        if let Some(m) = &s.mobility {
            exact.push(("moves", m.moves as f64));
            exact.push(("faults", m.faults as f64));
            exact.push(("crashes", m.crashes as f64));
            exact.push(("degraded_window_bytes", m.degraded_bytes as f64));
        }
        for (key, fresh) in exact {
            if let Some(base) = json_num(baseline, s.name, key) {
                if fresh != base {
                    bad.push(Regression {
                        what: format!("{}: {key} (deterministic)", s.name),
                        base,
                        fresh,
                        limit_pct: 0.0,
                    });
                }
            }
        }

        // Peak heap is deterministic up to allocator growth policy;
        // band it at the tolerance. Recovery times are virtual-clock
        // and banded at the same tolerance (the ISSUE 8 bar: fail on
        // >15% p99 recovery-time regression).
        let mut banded: Vec<(&'static str, f64)> =
            vec![("peak_heap_bytes", s.peak_heap_bytes as f64)];
        if let Some(m) = &s.mobility {
            banded.push(("recovery_p99_micros", m.recovery_p99_micros as f64));
            banded.push(("recovery_mean_micros", m.recovery_mean_micros as f64));
        }
        for (key, fresh) in banded {
            if let Some(base) = json_num(baseline, s.name, key) {
                if fresh > base * (1.0 + tol_pct / 100.0) {
                    bad.push(Regression {
                        what: format!("{}: {key}", s.name),
                        base,
                        fresh,
                        limit_pct: tol_pct,
                    });
                }
            }
        }

        // Throughput: normalize by the calibration ratio (the ISSUE 7
        // bar — fail on >15% events/sec regression).
        let base_eps = json_num(baseline, s.name, "events_per_sec").unwrap_or(0.0);
        if base_eps > 0.0 && base_calib > 0.0 && calibration > 0.0 {
            let expected = base_eps * (calibration / base_calib);
            if s.events_per_sec < expected * (1.0 - tol_pct / 100.0) {
                bad.push(Regression {
                    what: format!("{}: events_per_sec (calibrated)", s.name),
                    base: expected,
                    fresh: s.events_per_sec,
                    limit_pct: tol_pct,
                });
            }
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write = false;
    let mut smoke_only = false;
    let mut mobility = false;
    let mut check_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut dump_dir: Option<String> = None;
    let mut tolerance = 15.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write" => write = true,
            "--smoke" => smoke_only = true,
            "--mobility" => mobility = true,
            "--check" => check_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--dump-dir" => dump_dir = it.next().cloned(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or(tolerance)
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let calibration = calibrate();
    let samples: Vec<Sample> = if mobility {
        let mut v = vec![run_storm(&smoke_storm(), dump_dir.as_deref())];
        if !smoke_only {
            v.push(run_storm(&full_storm(), dump_dir.as_deref()));
        }
        v
    } else {
        let mut v = vec![run_scenario("flash_crowd_100k", ScaleConfig::smoke_100k())];
        if !smoke_only {
            v.push(run_scenario("flash_crowd_1m", ScaleConfig::paper_million()));
        }
        v
    };

    println!(
        "{:<20} {:>10} {:>12} {:>14} {:>10} {:>14}",
        "scenario", "members", "events", "events/sec", "wall s", "peak heap MB"
    );
    for s in &samples {
        println!(
            "{:<20} {:>10} {:>12} {:>14.0} {:>10.3} {:>14.1}",
            s.name,
            s.members,
            s.events,
            s.events_per_sec,
            s.wall_secs,
            s.peak_heap_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    if samples.iter().any(|s| s.mobility.is_some()) {
        println!();
        println!(
            "{:<20} {:>10} {:>8} {:>8} {:>14} {:>14} {:>16}",
            "recovery", "moves", "faults", "crashes", "mean us", "p99 us", "degraded bytes"
        );
        for s in &samples {
            let Some(m) = &s.mobility else { continue };
            println!(
                "{:<20} {:>10} {:>8} {:>8} {:>14} {:>14} {:>16}",
                s.name,
                m.moves,
                m.faults,
                m.crashes,
                m.recovery_mean_micros,
                m.recovery_p99_micros,
                m.degraded_bytes
            );
        }
    }
    println!("calibration: {calibration:.0} sha256-4k/sec");

    let json = render_json(&samples, calibration, mobility);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if write {
        let target = if mobility {
            "BENCH_mobility.json"
        } else {
            "BENCH_scale.json"
        };
        if let Err(e) = std::fs::write(target, &json) {
            eprintln!("cannot write {target}: {e}");
            std::process::exit(2);
        }
        println!("wrote {target}");
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let bad = check(&baseline, &samples, calibration, tolerance);
        if bad.is_empty() {
            println!("scale gate: PASS (tolerance {tolerance}%)");
        } else {
            println!("scale gate: FAIL");
            for r in &bad {
                println!(
                    "  {} regressed beyond {:.0}%: baseline {:.2}, fresh {:.2}",
                    r.what, r.limit_pct, r.base, r.fresh
                );
            }
            // Leave the evidence behind: the exact plan that was run
            // and the per-area ledger, for artifact upload.
            for s in &samples {
                if let Some(m) = &s.mobility {
                    let plan = FaultPlan::parse(&m.plan_text).unwrap_or_default();
                    write_failure_artifacts(dump_dir.as_deref(), s.name, &plan, &m.ledger_dump);
                }
            }
            std::process::exit(1);
        }
    }
}
