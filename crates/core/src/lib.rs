//! Mykil: a multi-hierarchy key distribution protocol for large secure
//! multicast groups, with support for member mobility and fault
//! tolerance.
//!
//! This crate reproduces the system described in *"Support for Mobility
//! and Fault Tolerance in Mykil"* (Huang & Mishra, University of
//! Colorado TR CU-CS-962-03 / DSN 2004). Mykil combines:
//!
//! - **Group-based hierarchy** (after Iolus): the multicast group is
//!   divided into *areas*, each run by an *area controller* (AC); areas
//!   form a tree, with each AC also a member of its parent area. Data
//!   multicast within an area is encrypted under a random key `K_r`
//!   which is itself encrypted under the area key; ACs re-encrypt `K_r`
//!   hop by hop to forward across areas (Figure 2).
//! - **Key-based hierarchy** (after LKH): inside each area, the AC
//!   maintains an auxiliary-key tree ([`mykil_tree::KeyTree`]) so that a
//!   leave event costs `O(log area)` key updates instead of `O(area)`.
//!
//! On top of the base rekeying machinery the paper — and this crate —
//! adds:
//!
//! - the 7-step authenticated **join protocol** (Figure 3) between a
//!   client, the registration server and an AC ([`member`],
//!   [`registration`], [`area`]);
//! - **tickets** (Kerberos-style, sealed under the AC-shared key
//!   `K_shared`) and the 6-step **rejoin protocol** (Figure 7) that lets
//!   a mobile or disconnected member join a new area without
//!   re-registering ([`ticket`]);
//! - **batching** of join/leave events with rekey-on-data and a
//!   freshness timer (Section III-E);
//! - **failure detection** via `T_idle` alive multicasts and `T_active`
//!   member alives (Section IV-A), member eviction, AC parent
//!   re-linking, and **primary-backup replication** of area controllers
//!   (Section IV-C).
//!
//! The protocol runs over the deterministic simulator in [`mykil_net`];
//! the [`group`] module wires complete deployments for examples, tests
//! and benchmarks.
//!
//! # Quick start
//!
//! ```
//! use mykil::group::GroupBuilder;
//!
//! // One registration server, two areas, small keys for the doc test.
//! let mut g = GroupBuilder::new(7).rsa_bits(512).areas(2).build();
//! let alice = g.register_member(0);
//! let bob = g.register_member(1);
//! g.settle();
//! assert!(g.is_member(alice) && g.is_member(bob));
//!
//! // Alice multicasts; Bob (possibly in another area) receives.
//! g.send_data(alice, b"hello, group");
//! g.settle();
//! assert_eq!(g.received_data(bob), vec![b"hello, group".to_vec()]);
//! ```

pub mod area;
pub mod auth;
pub mod config;
pub mod crypto_cost;
pub mod directory;
pub mod durable;
pub mod error;
pub mod group;
pub mod identity;
pub mod invariants;
pub mod member;
pub mod msg;
pub mod registration;
pub mod rekey;
pub mod scale;
pub mod ticket;
pub mod welcome;
pub mod wire;

pub use config::MykilConfig;
pub use error::ProtocolError;
pub use identity::{AreaId, ClientId, DeviceId};
