//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace routes
//! its `proptest` dev-dependency here. This is a deterministic
//! property-testing engine with the same surface syntax as upstream
//! proptest — `proptest!`, `prop_assert*!`, `prop_assume!`,
//! `prop_oneof!`, `any::<T>()`, integer-range and tuple strategies,
//! `Strategy::prop_map`, and `proptest::collection::vec` — but with two
//! deliberate simplifications:
//!
//! - **No shrinking.** A failing case reports its test name, case
//!   index, and message; the run is fully deterministic (the RNG seed
//!   is derived from the test name), so re-running reproduces it.
//! - **No persistence.** `.proptest-regressions` files are not read or
//!   written; regressions worth keeping are promoted to ordinary
//!   `#[test]` functions instead (see `crates/core/tests/`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__mykil_proptest_rng| {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&$strat, __mykil_proptest_rng);)+
                let __mykil_proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                __mykil_proptest_result
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts two values differ inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
