//! Voluntary leave (Section III-D) and freshness rekeying
//! (Section III-E timer condition).

use mykil::config::MykilConfig;
use mykil::group::GroupBuilder;
use mykil::member::Member;
use mykil_net::Duration;

#[test]
fn voluntary_leave_removes_member_and_rekeys() {
    let mut g = GroupBuilder::new(60).areas(1).build();
    let leaver = g.register_member(1);
    let stayer = g.register_member(2);
    g.settle();
    assert_eq!(g.ac(0).member_count(), 2);
    let key_before = g.ac(0).area_key();

    assert!(g
        .sim
        .invoke(leaver, |m: &mut Member, ctx| m.leave(ctx)));
    g.run_for(Duration::from_secs(3));

    assert_eq!(g.ac(0).member_count(), 1);
    assert!(!g.is_member(leaver));
    // Forward secrecy: the area rekeys away from the departed member.
    let key_after = g.ac(0).area_key();
    assert_ne!(key_before, key_after);
    assert_eq!(g.member(stayer).current_area_key(), Some(key_after));
    assert_eq!(g.stats().counter("ac-voluntary-leaves"), 1);
}

#[test]
fn leaver_stops_receiving_data() {
    let mut g = GroupBuilder::new(61).areas(1).build();
    let leaver = g.register_member(1);
    let sender = g.register_member(2);
    g.settle();
    g.sim.invoke(leaver, |m: &mut Member, ctx| m.leave(ctx));
    g.run_for(Duration::from_secs(2));

    g.send_data(sender, b"after departure");
    g.run_for(Duration::from_secs(1));
    assert!(g.received_data(leaver).is_empty());
}

#[test]
fn leaver_rejoins_later_with_its_ticket() {
    let mut g = GroupBuilder::new(62).areas(2).build();
    let m = g.register_member(1);
    g.settle();
    let home = g.member(m).area().unwrap().0 as usize;

    g.sim.invoke(m, |mm: &mut Member, ctx| {
        mm.leave(ctx);
    });
    g.run_for(Duration::from_secs(2));
    assert!(!g.is_member(m));
    assert!(g.member(m).ticket().is_some(), "ticket survives the leave");

    // The ski-pass model: the ticket readmits the member to any area
    // within its validity period, no registration server involved.
    let join_msgs = g.stats().kind("join").messages_sent;
    g.move_member(m, 1 - home);
    g.settle();
    assert!(g.is_member(m));
    assert_eq!(g.member(m).area().unwrap().0 as usize, 1 - home);
    assert_eq!(g.stats().kind("join").messages_sent, join_msgs);
}

#[test]
fn leave_request_from_wrong_node_is_ignored() {
    let mut g = GroupBuilder::new(63).areas(1).build();
    let victim = g.register_member(1);
    let attacker = g.register_member(2);
    g.settle();
    assert_eq!(g.ac(0).member_count(), 2);

    // The attacker replays a leave ct built for the victim's id from
    // its own address: the AC must not evict the victim.
    let ac_pub = g.ac(0).public_key().clone();
    let victim_client = g.member(victim).client_id().unwrap();
    let ac = g.primaries[0];
    g.sim.invoke(attacker, |_m: &mut Member, ctx| {
        let mut w = mykil::wire::Writer::new();
        w.u64(victim_client.0).u64(12345);
        let ct = mykil_crypto::envelope::HybridCiphertext::encrypt(
            &ac_pub,
            &w.into_bytes(),
            ctx.rng(),
        )
        .unwrap()
        .to_bytes();
        ctx.send(ac, "leave", mykil::msg::Msg::LeaveRequest { ct }.to_bytes());
    });
    g.run_for(Duration::from_secs(2));
    assert_eq!(g.ac(0).member_count(), 2, "forged leave must be ignored");
    assert!(g.is_member(victim));
}

#[test]
fn idle_freshness_rekey_rotates_area_key() {
    let mut cfg = MykilConfig::test();
    cfg.idle_freshness_rekey = true;
    let mut g = GroupBuilder::new(64).areas(1).config(cfg).build();
    let m = g.register_member(1);
    g.settle();
    let key_t0 = g.ac(0).area_key();
    let epoch_t0 = g.ac(0).epoch();

    // No membership changes, no data: the freshness timer alone must
    // rotate the area key, and the member must track it.
    g.run_for(Duration::from_secs(5));
    assert!(g.ac(0).epoch() > epoch_t0, "no freshness rekey happened");
    assert_ne!(g.ac(0).area_key(), key_t0);
    assert_eq!(g.member(m).current_area_key(), Some(g.ac(0).area_key()));
    assert!(g.stats().counter("ac-freshness-rekeys") >= 1);
}

#[test]
fn freshness_rekey_off_by_default() {
    let mut g = GroupBuilder::new(65).areas(1).build();
    g.register_member(1);
    g.settle();
    let epoch = g.ac(0).epoch();
    g.run_for(Duration::from_secs(5));
    assert_eq!(g.ac(0).epoch(), epoch, "no spurious rekeys when idle");
    assert_eq!(g.stats().counter("ac-freshness-rekeys"), 0);
}

#[test]
fn expired_membership_triggers_re_registration() {
    // Short subscriptions: the AC evicts at expiry and the member
    // re-registers through the registration server on its own.
    let mut cfg = MykilConfig::test();
    cfg.ticket_validity = Duration::from_secs(3);
    let mut g = GroupBuilder::new(66).areas(1).config(cfg).build();
    let m = g.register_member(1);
    g.run_for(Duration::from_secs(2));
    assert!(g.is_member(m));
    let first_client = g.member(m).client_id().unwrap();

    // Past expiry: eviction + autonomous re-registration.
    g.run_for(Duration::from_secs(6));
    assert!(g.is_member(m), "member did not re-register after expiry");
    let second_client = g.member(m).client_id().unwrap();
    assert_ne!(first_client, second_client, "a fresh registration assigns a new id");
    assert!(g.stats().counter("member-reregistrations") >= 1);
}

#[test]
fn denied_bad_ticket_falls_back_to_registration() {
    // A member whose ticket expired while disconnected: the rejoin is
    // denied with BadTicket and the member re-registers automatically.
    let mut cfg = MykilConfig::test();
    cfg.ticket_validity = Duration::from_secs(2);
    let mut g = GroupBuilder::new(67).areas(2).config(cfg).build();
    let m = g.register_member(1);
    g.run_for(Duration::from_secs(1));
    assert!(g.is_member(m));
    let home = g.member(m).area().unwrap().0 as usize;

    // Disconnect the member from everything until its ticket expires,
    // then let it reach only the *other* AC and the RS.
    let home_ac = g.primaries[home];
    g.sim.cut_link(m, home_ac);
    g.sim.cut_link(home_ac, m);
    g.run_for(Duration::from_secs(4)); // ticket now expired; auto-rejoin fires

    // The automatic rejoin presented an expired ticket, was denied, and
    // fell back to a full registration.
    g.run_for(Duration::from_secs(4));
    assert!(
        g.stats().counter("ac-rejoins-denied") >= 1
            || g.stats().counter("member-reregistrations") >= 1,
        "no denial or re-registration observed"
    );
    assert!(g.is_member(m), "member never recovered");
}

#[test]
fn unauthorized_client_is_rejected_at_registration() {
    use mykil::auth::InMemoryAuthDb;

    let mut db = InMemoryAuthDb::deny_by_default();
    db.allow(b"gold-subscriber", Duration::from_secs(3600));
    let mut g = GroupBuilder::new(68).areas(1).auth(Box::new(db)).build();

    let legit = g.register_member_with_auth(1, b"gold-subscriber");
    let freeloader = g.register_member_with_auth(2, b"no-card");
    g.settle();

    assert!(g.is_member(legit));
    assert!(!g.is_member(freeloader), "unauthorized client joined");
    assert_eq!(g.ac(0).member_count(), 1);
    // The auto member retries its stuck handshake; each retry is denied.
    assert!(g.registration_server().stats.denied >= 1);
    // The freeloader never progressed past step 1 and got no ticket.
    assert!(g.member(freeloader).ticket().is_none());
}

#[test]
fn blacklisted_token_is_rejected() {
    use mykil::auth::InMemoryAuthDb;

    let mut db = InMemoryAuthDb::allow_all(Duration::from_secs(3600));
    db.deny(b"stolen-card-token");
    let mut g = GroupBuilder::new(69).areas(1).auth(Box::new(db)).build();
    let thief = g.register_member_with_auth(1, b"stolen-card-token");
    let honest = g.register_member_with_auth(2, b"fresh-card");
    g.settle();
    assert!(!g.is_member(thief));
    assert!(g.is_member(honest));
}

#[test]
fn rejoin_within_batch_window_survives_the_flush() {
    // Regression (found by the protocol proptest): a member whose
    // departure is still queued in the batch window and who rejoins
    // before the flush must not be evicted by that flush.
    let mut g = GroupBuilder::new(70).areas(2).build();
    let m = g.register_member(1);
    g.settle();
    let home = g.member(m).area().unwrap().0 as usize;
    let home_ac = g.primaries[home];

    // Disconnect; the auto-rejoin moves the member to the other area,
    // queueing its departure at the home AC.
    g.sim.cut_link(m, home_ac);
    g.sim.cut_link(home_ac, m);
    g.run_for(Duration::from_millis(700));
    // Immediately rejoin *again*, which at the new AC (now the
    // member's home) takes the local re-admission path while the first
    // admission's rekey is still batched.
    let away = 1 - home;
    g.move_member(m, away);
    g.sim.restore_link(m, home_ac);
    g.sim.restore_link(home_ac, m);
    g.run_for(Duration::from_secs(8));

    assert!(g.is_member(m));
    let area = g.member(m).area().unwrap().0 as usize;
    assert_eq!(
        g.member(m).current_area_key(),
        Some(g.ac(area).area_key()),
        "readmitted member was evicted by its own stale departure"
    );
    // And it still receives data.
    let other = g.register_member(2);
    g.settle();
    g.send_data(other, b"still here?");
    g.run_for(Duration::from_secs(2));
    assert!(g.received_data(m).contains(&b"still here?".to_vec()));
}
