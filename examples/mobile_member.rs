//! Mobility: a member roams between areas using its ticket
//! (the paper's Section IV-B, Figure 7).
//!
//! A laptop user joins area 0, loses connectivity to its area
//! controller (walks out of range), detects the disconnection via the
//! `T_idle` alive silence, and rejoins area 1 presenting its ticket —
//! no second registration, no credit card, exactly like showing a ski
//! pass at a different lift.
//!
//! ```sh
//! cargo run --example mobile_member --release
//! ```

use mykil::group::GroupBuilder;
use mykil_net::Duration;

fn main() {
    let mut group = GroupBuilder::new(11).areas(2).build();

    let laptop = group.register_member(1);
    let desktop = group.register_member(2);
    group.settle();

    let home = group.member(laptop).area().unwrap();
    println!("laptop joined {home} with ticket of {} bytes", group.member(laptop).ticket().unwrap().len());

    // The laptop walks away: its link to the home AC goes dead.
    let home_ac = group.primaries[home.0 as usize];
    group.sim.cut_link(laptop, home_ac);
    group.sim.cut_link(home_ac, laptop);
    println!("laptop lost contact with its area controller...");

    // 5 * T_idle of silence later the member detects the disconnection
    // and rejoins the other area automatically with its ticket.
    group.run_for(Duration::from_secs(8));

    let away = group.member(laptop).area().unwrap();
    println!(
        "laptop detected {} disconnection(s) and now lives in {away}",
        group.member(laptop).disconnects_detected
    );
    assert_ne!(home, away, "the laptop should have moved areas");

    let t = group.member(laptop).timings;
    println!(
        "rejoin handshake (6 steps, ticket-based): {}",
        t.rejoin_completed.unwrap() - t.rejoin_started.unwrap()
    );
    println!(
        "rejoin messages on the wire: {} (vs {} for the full join)",
        group.stats().kind("rejoin").messages_sent,
        7
    );

    // Data still reaches the roamed member across areas.
    group.send_data(desktop, b"you have new mail");
    group.run_for(Duration::from_secs(2));
    for payload in group.received_data(laptop) {
        println!("laptop received: {}", String::from_utf8_lossy(&payload));
    }
    assert!(group
        .received_data(laptop)
        .contains(&b"you have new mail".to_vec()));
}
