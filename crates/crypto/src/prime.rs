//! Primality testing and prime generation for RSA key material.
//!
//! Candidates are screened by trial division against a table of small
//! primes, then subjected to Miller–Rabin with independently sampled
//! bases. Error probability after `t` rounds is at most `4^-t`; the
//! default of 20 rounds is far below any systems-level concern.

use crate::bignum::BigUint;
use crate::CryptoError;
use rand::RngCore;

/// Default number of Miller–Rabin rounds.
pub const DEFAULT_MR_ROUNDS: usize = 20;

/// Small primes for fast trial-division screening.
const SMALL_PRIMES: [u32; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Returns `true` when `n` is divisible by a small prime (and is not that
/// prime itself).
fn has_small_factor(n: &BigUint) -> bool {
    for &p in &SMALL_PRIMES {
        let (_, r) = n.div_rem_u32(p);
        if r == 0 {
            return *n != BigUint::from(p);
        }
    }
    false
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Deterministic answers for `n < 282` via the small-prime table.
pub fn is_probably_prime<R: RngCore + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    // Handle tiny numbers exactly.
    if let Some(v) = n.to_u64() {
        if v < 2 {
            return false;
        }
        if v <= *SMALL_PRIMES.last().unwrap() as u64 {
            return SMALL_PRIMES.contains(&(v as u32));
        }
    }
    if n.is_even() || has_small_factor(n) {
        return false;
    }

    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr_bits(1);
        s += 1;
    }

    let two = BigUint::from(2_u32);
    let n_minus_2 = n - &two;
    'witness: for _ in 0..rounds {
        let a = BigUint::random_range(&two, &n_minus_2, rng);
        let mut x = a.modpow(&d, n).expect("odd modulus > 1");
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.square().rem(n).expect("nonzero modulus");
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` significant bits.
///
/// The two top bits are forced to one (standard RSA practice, so that the
/// product of two such primes has the full `2·bits` length), and the low
/// bit is forced to one.
///
/// # Errors
///
/// Returns [`CryptoError::KeyGeneration`] when `bits < 8` or no prime is
/// found within a very generous candidate budget.
pub fn generate_prime<R: RngCore + ?Sized>(
    bits: usize,
    rng: &mut R,
) -> Result<BigUint, CryptoError> {
    if bits < 8 {
        return Err(CryptoError::KeyGeneration("prime size below 8 bits"));
    }
    // Expected number of candidates is O(bits·ln 2 / 2); budget 100x that.
    let budget = bits * 40 + 1000;
    for _ in 0..budget {
        let mut candidate = BigUint::random_bits(bits, rng);
        candidate.set_bit(0); // odd
        candidate.set_bit(bits - 2); // top-two bits set
        if has_small_factor(&candidate) {
            continue;
        }
        if is_probably_prime(&candidate, DEFAULT_MR_ROUNDS, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::KeyGeneration(
        "exhausted candidate budget without finding a prime",
    ))
}

/// Generates a "safe-ish" prime `p` with `gcd(p-1, e) == 1`, as required
/// for an RSA prime under public exponent `e`.
pub fn generate_rsa_prime<R: RngCore + ?Sized>(
    bits: usize,
    e: &BigUint,
    rng: &mut R,
) -> Result<BigUint, CryptoError> {
    for _ in 0..64 {
        let p = generate_prime(bits, rng)?;
        let p_minus_1 = &p - &BigUint::one();
        if p_minus_1.gcd(e).is_one() {
            return Ok(p);
        }
    }
    Err(CryptoError::KeyGeneration(
        "could not find prime compatible with public exponent",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;

    #[test]
    fn small_numbers_classified_exactly() {
        let mut rng = Drbg::from_seed(1);
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 281];
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 49, 91, 121, 169, 279];
        for p in primes {
            assert!(
                is_probably_prime(&BigUint::from(p), 10, &mut rng),
                "{p} should be prime"
            );
        }
        for c in composites {
            assert!(
                !is_probably_prime(&BigUint::from(c), 10, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn known_larger_primes() {
        let mut rng = Drbg::from_seed(2);
        // 2^31 - 1 is a Mersenne prime; 2^61 - 1 is too.
        let m31 = BigUint::from((1u64 << 31) - 1);
        let m61 = BigUint::from((1u64 << 61) - 1);
        assert!(is_probably_prime(&m31, 20, &mut rng));
        assert!(is_probably_prime(&m61, 20, &mut rng));
        // 2^32 + 1 = 641 * 6700417 is composite (Euler).
        let f5 = BigUint::from((1u64 << 32) + 1);
        assert!(!is_probably_prime(&f5, 20, &mut rng));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut rng = Drbg::from_seed(3);
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probably_prime(&BigUint::from(c), 20, &mut rng),
                "carmichael {c} must be rejected"
            );
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = Drbg::from_seed(4);
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(bits, &mut rng).unwrap();
            assert_eq!(p.bit_len(), bits, "bits={bits}");
            assert!(p.is_odd());
            assert!(p.bit(bits - 2), "second-highest bit forced");
            assert!(is_probably_prime(&p, 10, &mut rng));
        }
    }

    #[test]
    fn rsa_prime_coprime_with_e() {
        let mut rng = Drbg::from_seed(5);
        let e = BigUint::from(65_537_u64);
        let p = generate_rsa_prime(96, &e, &mut rng).unwrap();
        let p1 = &p - &BigUint::one();
        assert!(p1.gcd(&e).is_one());
    }

    #[test]
    fn tiny_sizes_rejected() {
        let mut rng = Drbg::from_seed(6);
        assert!(generate_prime(4, &mut rng).is_err());
    }

    #[test]
    fn distinct_primes_across_calls() {
        let mut rng = Drbg::from_seed(7);
        let a = generate_prime(64, &mut rng).unwrap();
        let b = generate_prime(64, &mut rng).unwrap();
        assert_ne!(a, b);
    }
}
