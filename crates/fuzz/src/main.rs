//! `mykil-fuzz` — deterministic structure-aware fuzzing of Mykil's
//! byte-level decoders.
//!
//! ```text
//! mykil-fuzz list
//! mykil-fuzz gen-corpus [--corpus DIR]
//! mykil-fuzz repro <target> <file>
//! mykil-fuzz run [<target>] [--seed N] [--iters N] [--budget-secs N]
//!                [--corpus DIR] [--crashes DIR] [--hang-secs N]
//! ```
//!
//! `run` fuzzes one target (or all five) from the committed seed
//! corpus plus the built-in generators. The input stream is a pure
//! function of `--seed`, so any crash reproduces from the artifact the
//! harness drops — or from the same seed and iteration budget alone.
//! Exit codes: 0 clean, 1 crash(es) found, 2 usage error, 3 hang.

mod engine;
mod targets;

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use engine::Mutator;
use targets::Target;

struct RunOptions {
    seed: u64,
    iters: u64,
    budget_secs: u64,
    hang_secs: u64,
    corpus_dir: PathBuf,
    crash_dir: PathBuf,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            seed: 1,
            iters: 20_000,
            budget_secs: 0, // 0 = iteration-bound only
            hang_secs: 30,
            corpus_dir: PathBuf::from("tests/corpus"),
            crash_dir: PathBuf::from("fuzz-crashes"),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("run");
    match cmd {
        "list" => {
            for t in targets::all() {
                println!("{}", t.name);
            }
            ExitCode::SUCCESS
        }
        "gen-corpus" => match parse_run_options(&args[1..]) {
            Ok((opts, None)) => gen_corpus(&opts.corpus_dir),
            Ok((_, Some(t))) => usage(&format!("gen-corpus takes no target (got `{t}`)")),
            Err(e) => usage(&e),
        },
        "repro" => {
            let (Some(name), Some(file)) = (args.get(1), args.get(2)) else {
                return usage("repro needs <target> <file>");
            };
            repro(name, Path::new(file))
        }
        "run" => match parse_run_options(&args[1..]) {
            Ok((opts, only)) => run(&opts, only.as_deref()),
            Err(e) => usage(&e),
        },
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: mykil-fuzz [list | gen-corpus [--corpus DIR] | repro <target> <file> |\n\
         \x20       run [<target>] [--seed N] [--iters N] [--budget-secs N]\n\
         \x20           [--corpus DIR] [--crashes DIR] [--hang-secs N]]"
    );
    ExitCode::from(2)
}

fn parse_run_options(args: &[String]) -> Result<(RunOptions, Option<String>), String> {
    let mut opts = RunOptions::default();
    let mut only = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--seed" => opts.seed = num(&val("--seed")?)?,
            "--iters" => opts.iters = num(&val("--iters")?)?,
            "--budget-secs" => opts.budget_secs = num(&val("--budget-secs")?)?,
            "--hang-secs" => opts.hang_secs = num(&val("--hang-secs")?)?.max(1),
            "--corpus" => opts.corpus_dir = PathBuf::from(val("--corpus")?),
            "--crashes" => opts.crash_dir = PathBuf::from(val("--crashes")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            name => {
                if only.replace(name.to_string()).is_some() {
                    return Err("at most one target name".to_string());
                }
            }
        }
    }
    Ok((opts, only))
}

fn num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad number `{s}`"))
}

/// Writes every target's built-in seeds (including regression
/// fixtures) under `<dir>/<target>/`. Idempotent: names are stable.
fn gen_corpus(dir: &Path) -> ExitCode {
    for t in targets::all() {
        let tdir = dir.join(t.name);
        if let Err(e) = std::fs::create_dir_all(&tdir) {
            eprintln!("error: create {}: {e}", tdir.display());
            return ExitCode::from(2);
        }
        for (name, bytes) in (t.seeds)() {
            let path = tdir.join(name);
            if let Err(e) = std::fs::write(&path, &bytes) {
                eprintln!("error: write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wrote {} ({} bytes)", path.display(), bytes.len());
        }
    }
    ExitCode::SUCCESS
}

/// Replays one input file against one target, with panics surfaced
/// normally (no catch) so a debugger or backtrace points at the bug.
fn repro(name: &str, file: &Path) -> ExitCode {
    let Some(t) = targets::find(name) else {
        return usage(&format!("unknown target `{name}`"));
    };
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: read {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    println!("repro: {} <- {} ({} bytes)", t.name, file.display(), bytes.len());
    (t.run)(&bytes);
    println!("input ran clean");
    ExitCode::SUCCESS
}

/// Loads the on-disk corpus for a target (sorted for determinism) and
/// merges in the built-in seeds so the harness is self-sufficient even
/// before `gen-corpus` has run.
fn load_corpus(dir: &Path, t: &Target) -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = (t.seeds)().into_iter().map(|(_, b)| b).collect();
    let tdir = dir.join(t.name);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&tdir)
        .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.path()).collect())
        .unwrap_or_default();
    paths.sort();
    for p in paths {
        if let Ok(bytes) = std::fs::read(&p) {
            if !corpus.contains(&bytes) {
                corpus.push(bytes);
            }
        }
    }
    corpus
}

fn run(opts: &RunOptions, only: Option<&str>) -> ExitCode {
    let chosen: Vec<Target> = match only {
        Some(name) => match targets::find(name) {
            Some(t) => vec![t],
            None => return usage(&format!("unknown target `{name}`")),
        },
        None => targets::all(),
    };

    engine::install_panic_hook();

    // Watchdog: decoders must never loop on arbitrary bytes, and a
    // silent infinite loop would otherwise just eat the CI budget. A
    // side thread watches the iteration counter; if it stalls for
    // --hang-secs the current input is dumped and the process exits 3.
    let progress = Arc::new(AtomicU64::new(0));
    let current: Arc<Mutex<(String, Vec<u8>)>> =
        Arc::new(Mutex::new((String::new(), Vec::new())));
    {
        let progress = Arc::clone(&progress);
        let current = Arc::clone(&current);
        let crash_dir = opts.crash_dir.clone();
        let hang_secs = opts.hang_secs;
        std::thread::spawn(move || {
            let mut last = (0u64, Instant::now());
            loop {
                std::thread::sleep(Duration::from_millis(500));
                let now = progress.load(Ordering::Relaxed);
                if now != last.0 {
                    last = (now, Instant::now());
                } else if last.1.elapsed() >= Duration::from_secs(hang_secs) {
                    let (target, input) = current
                        .lock()
                        .map(|g| g.clone())
                        .unwrap_or_default();
                    let path = save_artifact(&crash_dir, &target, "hang", &input);
                    eprintln!(
                        "HANG: target `{target}` made no progress for {hang_secs}s; \
                         input saved to {path}"
                    );
                    eprintln!("repro: mykil-fuzz repro {target} {path}");
                    std::process::exit(3);
                }
            }
        });
    }

    let mut total_crashes = 0usize;
    for t in &chosen {
        total_crashes += fuzz_target(t, opts, &progress, &current);
    }
    if total_crashes > 0 {
        eprintln!("{total_crashes} crashing input(s) found");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn fuzz_target(
    t: &Target,
    opts: &RunOptions,
    progress: &AtomicU64,
    current: &Mutex<(String, Vec<u8>)>,
) -> usize {
    let corpus = load_corpus(&opts.corpus_dir, t);
    let mut mutator = Mutator::new(opts.seed);
    let started = Instant::now();
    let mut crashes = 0usize;
    let mut seen_messages: Vec<String> = Vec::new();
    let mut executed = 0u64;

    // The corpus itself runs first: committed regression fixtures are
    // part of every budget, mutated or not.
    let mut queue: Vec<Vec<u8>> = corpus.clone();

    for i in 0..opts.iters {
        if opts.budget_secs > 0 && started.elapsed() >= Duration::from_secs(opts.budget_secs) {
            break;
        }
        let input = match queue.pop() {
            Some(seed_input) => seed_input,
            None => {
                let mut buf = mutator.pick(&corpus).to_vec();
                mutator.mutate(&mut buf, &corpus);
                buf
            }
        };
        if let Ok(mut guard) = current.lock() {
            *guard = (t.name.to_string(), input.clone());
        }
        let result = engine::run_caught(t.run, &input);
        executed += 1;
        progress.fetch_add(1, Ordering::Relaxed);
        if let Err(msg) = result {
            // Deduplicate by panic message so one bug doesn't flood the
            // artifact dir across thousands of mutants.
            if !seen_messages.contains(&msg) {
                seen_messages.push(msg.clone());
                crashes += 1;
                let path = save_artifact(&opts.crash_dir, t.name, "crash", &input);
                eprintln!("CRASH [{}] iter {i}: {msg}", t.name);
                eprintln!("  input saved to {path}");
                eprintln!("  repro: mykil-fuzz repro {} {path}", t.name);
            }
        }
    }
    println!(
        "{}: {executed} inputs in {:.1}s, {crashes} unique crash(es), corpus {}",
        t.name,
        started.elapsed().as_secs_f64(),
        corpus.len()
    );
    crashes
}

/// Saves a crashing/hanging input; the name is content-addressed via
/// the WAL CRC so identical inputs dedupe across runs.
fn save_artifact(dir: &Path, target: &str, kind: &str, input: &[u8]) -> String {
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!(
        "{target}-{kind}-{:08x}.bin",
        mykil_net::crc32(input)
    ));
    let _ = std::fs::write(&path, input);
    path.display().to_string()
}
