//! Adversarial tests: forged signatures, tampered tickets, replays and
//! eavesdroppers must all be rejected without crashing any node.

use mykil::area::AreaController;
use mykil::group::GroupBuilder;
use mykil::identity::AreaId;
use mykil::member::Member;
use mykil::msg::Msg;
use mykil::wire::Writer;
use mykil_crypto::envelope::HybridCiphertext;
use mykil_net::{Duration, Node};

#[test]
fn forged_key_update_is_ignored_by_members() {
    let mut g = GroupBuilder::new(40).areas(1).build();
    let m = g.register_member(1);
    g.settle();
    let key_before = g.member(m).current_area_key().unwrap();

    // An insider (or outsider) multicasts a fake key update with a
    // garbage signature — the paper's motivation for signing updates.
    let forged = Msg::KeyUpdate {
        area: AreaId(0),
        epoch: 999,
        body: vec![0u8; 64],
        sig: vec![0u8; 96],
    }
    .to_bytes();
    let attacker_source = g.primaries[0];
    g.sim.invoke(m, |mm: &mut Member, ctx| {
        mm.on_message(ctx, attacker_source, &forged);
    });
    g.run_for(Duration::from_millis(100));
    assert_eq!(g.member(m).current_area_key(), Some(key_before));
}

#[test]
fn garbage_bytes_do_not_crash_any_node() {
    let mut g = GroupBuilder::new(41).areas(1).build();
    let m = g.register_member(1);
    g.settle();
    let rs = mykil_net::NodeId::from_index(0);
    let ac = g.primaries[0];
    let payloads: Vec<Vec<u8>> = vec![
        vec![],
        vec![0xff],
        vec![1, 2, 3, 4],
        vec![30; 100],
        Msg::Join1 { ct: vec![0; 10] }.to_bytes(),
        Msg::Rejoin1 { ct: vec![0xee; 50] }.to_bytes(),
    ];
    for p in &payloads {
        let bytes = p.clone();
        g.sim.invoke(m, |mm: &mut Member, ctx| {
            mm.on_message(ctx, ac, &bytes);
        });
    }
    // Also shell the RS and the AC directly.
    for p in &payloads {
        let bytes = p.clone();
        g.sim
            .invoke(ac, |a: &mut AreaController, ctx| a.on_message(ctx, m, &bytes));
        let bytes = p.clone();
        g.sim.invoke(
            rs,
            |r: &mut mykil::registration::RegistrationServer, ctx| {
                r.on_message(ctx, m, &bytes)
            },
        );
    }
    g.settle();
    assert!(g.is_member(m), "member state corrupted by garbage input");
}

#[test]
fn fabricated_ticket_is_denied() {
    let mut g = GroupBuilder::new(42).areas(1).build();
    let m = g.register_member(1);
    g.settle();
    let denials_before = g.ac(0).stats.rejoins_denied;

    // Build a rejoin step 1 around a ticket sealed under the wrong key.
    let ac_pub = g.ac(0).public_key().clone();
    let fake_ticket = vec![0xabu8; 120];
    let mut w = Writer::new();
    w.u64(777)
        .raw(mykil::identity::DeviceId::from_seed(9).as_bytes())
        .bytes(&fake_ticket);
    let payload = w.into_bytes();
    let ac = g.primaries[0];
    g.sim.invoke(m, |_mm: &mut Member, ctx| {
        let ct = HybridCiphertext::encrypt(&ac_pub, &payload, ctx.rng())
            .unwrap()
            .to_bytes();
        ctx.send(ac, "rejoin", Msg::Rejoin1 { ct }.to_bytes());
    });
    g.run_for(Duration::from_secs(1));
    assert_eq!(g.ac(0).stats.rejoins_denied, denials_before + 1);
    assert_eq!(g.ac(0).stats.rejoins_admitted, 0);
}

#[test]
fn replayed_join6_cannot_mint_a_second_membership() {
    let mut g = GroupBuilder::new(43).areas(1).build();
    let m = g.register_member(1);
    g.settle();
    assert_eq!(g.ac(0).member_count(), 1);
    let admitted_before = g.ac(0).stats.joins_admitted;

    // Replay a syntactically valid but stale step 6: the pending
    // admission was consumed, so nothing happens.
    let ac_pub = g.ac(0).public_key().clone();
    let ac = g.primaries[0];
    let mut w = Writer::new();
    w.u64(12345).u64(999).raw(&[0u8; 6]);
    let payload = w.into_bytes();
    g.sim.invoke(m, |_mm: &mut Member, ctx| {
        let ct = HybridCiphertext::encrypt(&ac_pub, &payload, ctx.rng())
            .unwrap()
            .to_bytes();
        ctx.send(ac, "join", Msg::Join6 { ct }.to_bytes());
    });
    g.run_for(Duration::from_secs(1));
    assert_eq!(g.ac(0).stats.joins_admitted, admitted_before);
    assert_eq!(g.ac(0).member_count(), 1);
}

#[test]
fn eavesdropper_outside_the_group_receives_nothing() {
    let mut g = GroupBuilder::new(44).areas(1).build();
    let a = g.register_member(1);
    let b = g.register_member(2);
    // A node that never joins: it is not in any multicast group.
    let outsider = g.register_member_manual(3);
    g.settle();
    g.send_data(a, b"subscribers only");
    g.run_for(Duration::from_secs(1));
    assert!(g.received_data(b).contains(&b"subscribers only".to_vec()));
    assert!(g.received_data(outsider).is_empty());
    assert_eq!(g.member(outsider).decrypt_failures, 0);
}

#[test]
fn departed_member_cannot_follow_the_rekeyed_area() {
    // Protocol-level forward secrecy: after eviction, the area key has
    // rotated away from everything the departed member knows.
    let mut g = GroupBuilder::new(45).areas(1).build();
    let victim = g.register_member(1);
    let stayer = g.register_member(2);
    g.settle();
    let victim_key = g.member(victim).current_area_key().unwrap();

    g.sim.partition(victim, 5);
    g.run_for(Duration::from_secs(5)); // eviction + rekey

    assert!(!g.ac(0).has_member(g.member(victim).client_id().unwrap()));
    let new_key = g.ac(0).area_key();
    assert_ne!(new_key, victim_key);
    // The stayer follows; the victim's view is frozen in the past.
    assert_eq!(g.member(stayer).current_area_key(), Some(new_key));
    assert_eq!(g.member(victim).current_area_key(), Some(victim_key));
}

#[test]
fn takeover_announcement_from_impostor_is_rejected() {
    let mut g = GroupBuilder::new(46).areas(1).replicated(true).build();
    let m = g.register_member(1);
    g.settle();
    let ac_before = g.primaries[0];

    // A random party claims to be the new controller with a bogus
    // signature; members must keep their current AC pointer.
    let forged = Msg::Takeover {
        area: AreaId(0),
        sig: vec![0u8; 96],
        pubkey: g.backup(0).public_key().to_bytes(),
    }
    .to_bytes();
    let imposter = g.backups[0];
    g.sim.invoke(m, |mm: &mut Member, ctx| {
        mm.on_message(ctx, imposter, &forged);
    });
    g.run_for(Duration::from_millis(200));

    // Members still talk to the original primary: data still flows.
    g.send_data(m, b"still with the primary");
    g.run_for(Duration::from_secs(1));
    assert!(g
        .received_data(m)
        .contains(&b"still with the primary".to_vec()));
    assert_eq!(g.ac(0).stats.data_forwarded, 1);
    let _ = ac_before;
}
