//! Graphviz export for auxiliary-key trees (debugging aid).
//!
//! `tree.to_dot()` renders the structure the paper draws in Figures 4–6:
//! interior auxiliary-key nodes, occupied leaves labeled with their
//! member, and vacant leaves (Mykil keeps them) dashed.

use crate::store::KeyStore;
use crate::tree::{NodeIdx, Tree};
use std::fmt::Write;

impl<S: KeyStore> Tree<S> {
    /// Renders the tree in Graphviz `dot` syntax.
    ///
    /// Key *values* are never included — only structure, key versions,
    /// and occupancy.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph key_tree {\n  node [shape=circle];\n");
        for i in 0..self.node_count() {
            let node = NodeIdx::from_raw(i);
            let version = self.version_of(node);
            let children = self.children_of(node);
            if i == 0 {
                let _ = writeln!(
                    out,
                    "  k{i} [label=\"area key\\nv{version}\", shape=doublecircle];"
                );
            } else if !children.is_empty() {
                let _ = writeln!(out, "  k{i} [label=\"k{i}\\nv{version}\"];");
            } else if let Some(m) = self.occupant_of(node) {
                let _ = writeln!(
                    out,
                    "  k{i} [label=\"{m}\\nv{version}\", shape=box];"
                );
            } else {
                let _ = writeln!(
                    out,
                    "  k{i} [label=\"vacant\", shape=box, style=dashed];"
                );
            }
            for c in children {
                let _ = writeln!(out, "  k{i} -> k{};", c.raw());
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{KeyTree, TreeConfig};
    use crate::MemberId;
    use mykil_crypto::drbg::Drbg;

    #[test]
    fn dot_contains_structure_not_keys() {
        let mut rng = Drbg::from_seed(1);
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut rng);
        for m in 0..6 {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        tree.leave(MemberId(2), &mut rng).unwrap();
        let dot = tree.to_dot();
        assert!(dot.starts_with("digraph key_tree {"));
        assert!(dot.contains("area key"));
        assert!(dot.contains("m0"));
        assert!(dot.contains("vacant"), "kept empty leaf must render");
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
        // One node line per tree node.
        let boxes = dot.matches("shape=box").count();
        assert!(boxes >= 6, "all leaves rendered: {boxes}");
        // No 32-hex-char key material anywhere.
        assert!(!dot
            .split_whitespace()
            .any(|w| w.len() >= 32 && w.chars().all(|c| c.is_ascii_hexdigit())));
    }

    #[test]
    fn empty_tree_renders_root_only() {
        let mut rng = Drbg::from_seed(2);
        let tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        let dot = tree.to_dot();
        assert!(dot.contains("area key"));
        assert!(!dot.contains("->"));
    }
}
