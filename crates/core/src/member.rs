//! A group member: join, rejoin, data, liveness.
//!
//! Implements the client side of the 7-step join protocol (Figure 3),
//! the 6-step rejoin protocol (Figure 7), data multicast and reception
//! (Figure 2), and the member half of failure detection (Section IV-A):
//! periodic `alive` messages to the AC and a disconnect detector that
//! triggers an automatic rejoin to another area controller.

use crate::config::MykilConfig;
use crate::crypto_cost::CryptoCost;
use crate::directory::AcDirectory;
use crate::identity::{AreaId, ClientId, DeviceId};
use crate::msg::{Msg, RejoinDenyReason};
use crate::rekey::{decode_path, KeyState};
use crate::welcome::Welcome;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope::{self, HybridCiphertext};
use mykil_crypto::rc4::Rc4;
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use mykil_net::{Context, GroupId, Node, NodeId, Time};
use rand::RngCore;

const TIMER_ALIVE: u64 = 1;
const TIMER_DISCONNECT: u64 = 2;

/// Where the member is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberPhase {
    /// Not yet registered.
    Idle,
    /// Join step 1 sent, awaiting step 2.
    AwaitJoin2 { nonce_cw: u64 },
    /// Step 3 sent, awaiting step 5.
    AwaitJoin5,
    /// Step 6 sent, awaiting step 7.
    AwaitJoin7 { nonce_ca: u64 },
    /// Full member of an area.
    Active,
    /// Rejoin step 1 sent, awaiting step 2.
    AwaitRejoin2 { nonce_cb: u64 },
    /// Rejoin step 3 sent, awaiting step 6.
    AwaitRejoin6,
    /// Rejoin was denied.
    Denied(RejoinDenyReason),
}

/// Latency milestones for the Section V-D measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemberTimings {
    /// When the last join attempt started / completed.
    pub join_started: Option<Time>,
    /// Completion of the join handshake (step 7 processed).
    pub join_completed: Option<Time>,
    /// When the last rejoin attempt started / completed.
    pub rejoin_started: Option<Time>,
    /// Completion of the rejoin handshake (step 6 processed).
    pub rejoin_completed: Option<Time>,
}

/// A group member node.
pub struct Member {
    cfg: MykilConfig,
    cost: CryptoCost,
    keypair: RsaKeyPair,
    rs_pub: RsaPublicKey,
    rs_node: NodeId,
    device: DeviceId,
    auth_info: Vec<u8>,
    /// Join automatically at start; rejoin automatically on disconnect.
    auto: bool,

    phase: MemberPhase,
    client: Option<ClientId>,
    area: Option<AreaId>,
    ac_node: Option<NodeId>,
    ac_pub: Option<RsaPublicKey>,
    group: Option<GroupId>,
    backup_node: Option<NodeId>,
    backup_pub: Option<RsaPublicKey>,
    ticket: Option<Vec<u8>>,
    /// When the current membership expires (from the welcome payload).
    membership_expires: Option<Time>,
    keys: KeyState,
    directory: AcDirectory,
    epoch: u64,

    last_heard_ac: Time,
    last_sent_ac: Time,
    last_refresh_request: Time,
    /// When the current phase was entered (handshake retry timer).
    phase_since: Time,
    /// Key paths that arrived before the welcome (a small unicast can
    /// overtake the larger join-step-7 message); replayed after install.
    stashed_paths: Vec<Vec<(u32, SymmetricKey)>>,
    next_seq: u64,
    rejoin_target: Option<NodeId>,
    /// Rotation cursor into `directory` for handshake retries; when it
    /// wraps without landing anywhere, the member falls back to a full
    /// re-registration through the RS (whose directory, unlike this
    /// cached copy, tracks takeovers).
    rejoin_cursor: usize,

    /// Successfully decrypted application payloads, in arrival order.
    pub received: Vec<Vec<u8>>,
    /// Data messages that failed to decrypt (stale keys).
    pub decrypt_failures: u64,
    /// Number of disconnect events detected.
    pub disconnects_detected: u64,
    /// Latency milestones.
    pub timings: MemberTimings,
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Member")
            .field("client", &self.client)
            .field("area", &self.area)
            .field("phase", &self.phase)
            .field("keys", &self.keys.key_count())
            .finish_non_exhaustive()
    }
}

impl Member {
    /// Creates a member with a pre-generated key pair.
    ///
    /// `auto` controls whether the member registers on startup and
    /// rejoins on disconnect by itself; tests that drive the protocol
    /// manually pass `false`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: MykilConfig,
        cost: CryptoCost,
        keypair: RsaKeyPair,
        rs_pub: RsaPublicKey,
        rs_node: NodeId,
        device: DeviceId,
        auth_info: Vec<u8>,
        auto: bool,
    ) -> Member {
        Member {
            cfg,
            cost,
            keypair,
            rs_pub,
            rs_node,
            device,
            auth_info,
            auto,
            phase: MemberPhase::Idle,
            client: None,
            area: None,
            ac_node: None,
            ac_pub: None,
            group: None,
            backup_node: None,
            backup_pub: None,
            ticket: None,
            membership_expires: None,
            keys: KeyState::new(),
            directory: AcDirectory::default(),
            epoch: 0,
            last_heard_ac: Time::ZERO,
            last_sent_ac: Time::ZERO,
            last_refresh_request: Time::ZERO,
            phase_since: Time::ZERO,
            stashed_paths: Vec::new(),
            next_seq: 0,
            rejoin_target: None,
            rejoin_cursor: 0,
            received: Vec::new(),
            decrypt_failures: 0,
            disconnects_detected: 0,
            timings: MemberTimings::default(),
        }
    }

    // ---- accessors used by tests, examples and benches ----

    /// Current lifecycle phase.
    pub fn phase(&self) -> &MemberPhase {
        &self.phase
    }

    /// Whether the member is an active area member.
    pub fn is_active(&self) -> bool {
        self.phase == MemberPhase::Active
    }

    /// The member's assigned identity, once joined.
    pub fn client_id(&self) -> Option<ClientId> {
        self.client
    }

    /// The area the member currently belongs to.
    pub fn area(&self) -> Option<AreaId> {
        self.area
    }

    /// The member's current area-key view (None before joining).
    pub fn current_area_key(&self) -> Option<SymmetricKey> {
        self.keys.area_key()
    }

    /// Number of symmetric keys held (Section V-A storage metric).
    pub fn key_count(&self) -> usize {
        self.keys.key_count()
    }

    /// The member's sealed ticket, once issued.
    pub fn ticket(&self) -> Option<&[u8]> {
        self.ticket.as_deref()
    }

    /// The AC directory received at registration.
    pub fn directory(&self) -> &AcDirectory {
        &self.directory
    }

    fn set_phase(&mut self, now: Time, phase: MemberPhase) {
        if phase == MemberPhase::Active {
            self.rejoin_cursor = 0;
        }
        self.phase = phase;
        self.phase_since = now;
    }

    // ---- protocol actions (also invocable from harnesses) ----

    /// Starts the 7-step join protocol (step 1).
    pub fn start_join(&mut self, ctx: &mut Context<'_>) {
        let nonce_cw = ctx.rng().next_u64();
        let mut w = Writer::new();
        w.bytes(&self.auth_info)
            .bytes(&self.keypair.public().to_bytes())
            .u64(nonce_cw);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct) = HybridCiphertext::encrypt(&self.rs_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        self.timings.join_started = Some(ctx.now());
        self.set_phase(ctx.now(), MemberPhase::AwaitJoin2 { nonce_cw });
        ctx.send(self.rs_node, "join", Msg::Join1 { ct: ct.to_bytes() }.to_bytes());
    }

    /// Starts the 6-step rejoin protocol toward `target` (rejoin step 1).
    ///
    /// Requires a ticket from a previous join. Returns `false` without
    /// sending anything when no ticket is held.
    pub fn start_rejoin(&mut self, ctx: &mut Context<'_>, target: NodeId) -> bool {
        let Some(ticket) = self.ticket.clone() else {
            return false;
        };
        let target_pub = match self.directory.by_node(target.index() as u32) {
            Some(info) => match RsaPublicKey::from_bytes(&info.pubkey) {
                Ok(pk) => pk,
                Err(_) => return false,
            },
            None => return false,
        };
        // Leaving the old multicast group models the member moving away.
        if let Some(g) = self.group.take() {
            ctx.leave_group(g);
        }
        let nonce_cb = ctx.rng().next_u64();
        let mut w = Writer::new();
        w.u64(nonce_cb)
            .raw(self.device.as_bytes())
            .bytes(&ticket);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct) = HybridCiphertext::encrypt(&target_pub, &w.into_bytes(), ctx.rng()) else {
            return false;
        };
        self.timings.rejoin_started = Some(ctx.now());
        self.stashed_paths.clear();
        self.rejoin_target = Some(target);
        self.ac_pub = Some(target_pub);
        self.set_phase(ctx.now(), MemberPhase::AwaitRejoin2 { nonce_cb });
        ctx.send(target, "rejoin", Msg::Rejoin1 { ct: ct.to_bytes() }.to_bytes());
        true
    }

    /// Announces a voluntary departure to the AC (Section III-D) and
    /// drops all group state except the ticket (which remains valid for
    /// a later rejoin within the membership period — the ski-pass
    /// model).
    ///
    /// Returns `false` when not currently a member.
    pub fn leave(&mut self, ctx: &mut Context<'_>) -> bool {
        if !self.is_active() {
            return false;
        }
        let (Some(ac), Some(ac_pub), Some(client)) =
            (self.ac_node, self.ac_pub.clone(), self.client)
        else {
            return false;
        };
        let mut w = Writer::new();
        w.u64(client.0).u64(ctx.rng().next_u64());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if let Ok(ct) = HybridCiphertext::encrypt(&ac_pub, &w.into_bytes(), ctx.rng()) {
            // Reliable: a silently lost leave means the AC keeps paying
            // rekey cost for a departed member until eviction kicks in.
            ctx.send_reliable(ac, "leave", Msg::LeaveRequest { ct: ct.to_bytes() }.to_bytes());
        }
        if let Some(g) = self.group.take() {
            ctx.leave_group(g);
        }
        self.set_phase(ctx.now(), MemberPhase::Idle);
        self.keys.clear();
        self.area = None;
        self.ac_node = None;
        self.ac_pub = None;
        self.backup_node = None;
        self.backup_pub = None;
        ctx.stats().bump("member-voluntary-leaves", 1);
        true
    }

    /// Multicasts application data: encrypts under a fresh random key
    /// `K_r`, seals `K_r` under the area key, and hands the packet to
    /// the AC (which rekeys if needed and forwards — Section III-E).
    ///
    /// Returns `false` when the member is not active.
    pub fn send_data(&mut self, ctx: &mut Context<'_>, payload: &[u8]) -> bool {
        let (Some(ac), Some(area_key), Some(client)) =
            (self.ac_node, self.keys.area_key(), self.client)
        else {
            return false;
        };
        let k_r = SymmetricKey::random(ctx.rng());
        let mut ciphertext = payload.to_vec();
        Rc4::new(k_r.as_bytes()).apply_keystream(&mut ciphertext);
        ctx.charge_compute(self.cost.symmetric_op);
        let wrapped = envelope::seal(&area_key, k_r.as_bytes(), ctx.rng());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.last_sent_ac = ctx.now();
        ctx.send(
            ac,
            "data",
            Msg::Data {
                origin: client,
                seq,
                wrapped_key: wrapped,
                payload: ciphertext,
            }
            .to_bytes(),
        );
        true
    }

    // ---- message handlers ----

    fn decrypt(&self, ct: &[u8]) -> Option<Vec<u8>> {
        HybridCiphertext::from_bytes(ct)
            .ok()?
            .decrypt(&self.keypair)
            .ok()
    }

    fn handle_join2(&mut self, ctx: &mut Context<'_>, ct: &[u8]) {
        let MemberPhase::AwaitJoin2 { nonce_cw } = self.phase else {
            return;
        };
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = self.decrypt(ct) else { return };
        let mut r = Reader::new(&plain);
        let (Ok(echo), Ok(nonce_wc)) = (r.u64(), r.u64()) else {
            return;
        };
        if r.finish().is_err() || echo != nonce_cw.wrapping_add(1) {
            return;
        }
        // Step 3: prove knowledge of Nonce_WC.
        let mut w = Writer::new();
        w.u64(nonce_wc.wrapping_add(1));
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct3) = HybridCiphertext::encrypt(&self.rs_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        self.set_phase(ctx.now(), MemberPhase::AwaitJoin5);
        ctx.send(self.rs_node, "join", Msg::Join3 { ct: ct3.to_bytes() }.to_bytes());
    }

    fn handle_join5(&mut self, ctx: &mut Context<'_>, ct: &[u8], sig: &[u8]) {
        if self.phase != MemberPhase::AwaitJoin5 {
            return;
        }
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !self.rs_pub.verify(ct, sig) {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = self.decrypt(ct) else { return };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let nonce_ac_1 = r.u64().ok()?;
            let area = AreaId(r.u32().ok()?);
            let ac_node = r.u32().ok()?;
            let ac_pub = r.bytes().ok()?.to_vec();
            let dir = AcDirectory::read(&mut r).ok()?;
            r.finish().ok()?;
            Some((nonce_ac_1, area, ac_node, ac_pub, dir))
        })();
        let Some((nonce_ac_1, area, ac_node, ac_pub, dir)) = parsed else {
            return;
        };
        let Ok(ac_pub) = RsaPublicKey::from_bytes(&ac_pub) else {
            return;
        };
        self.area = Some(area);
        self.ac_node = Some(NodeId::from_index(ac_node as usize));
        self.ac_pub = Some(ac_pub.clone());
        self.directory = dir;
        // Step 6 → AC: {Nonce_AC + 2, Nonce_CA, device id}. The device
        // id (NIC MAC) rides along so the AC can bind the ticket to the
        // member's hardware (Section IV-B).
        let nonce_ca = ctx.rng().next_u64();
        let mut w = Writer::new();
        w.u64(nonce_ac_1.wrapping_add(1))
            .u64(nonce_ca)
            .raw(self.device.as_bytes());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct6) = HybridCiphertext::encrypt(&ac_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        self.set_phase(ctx.now(), MemberPhase::AwaitJoin7 { nonce_ca });
        self.last_sent_ac = ctx.now();
        ctx.send(
            NodeId::from_index(ac_node as usize),
            "join",
            Msg::Join6 { ct: ct6.to_bytes() }.to_bytes(),
        );
    }

    fn install_welcome(&mut self, ctx: &mut Context<'_>, welcome: Welcome) {
        self.client = Some(welcome.client);
        self.area = Some(welcome.area);
        self.ac_node = Some(NodeId::from_index(welcome.ac_node as usize));
        self.group = Some(GroupId::from_index(welcome.group_raw as usize));
        if welcome.backup_node != u32::MAX {
            self.backup_node = Some(NodeId::from_index(welcome.backup_node as usize));
            self.backup_pub = RsaPublicKey::from_bytes(&welcome.backup_pubkey).ok();
        } else {
            self.backup_node = None;
            self.backup_pub = None;
        }
        self.ticket = Some(welcome.ticket);
        self.membership_expires = Some(Time::from_micros(welcome.valid_until_us));
        self.keys.clear();
        self.keys.install_path(&welcome.path);
        // Replay key refreshes that overtook the welcome on the wire.
        for path in self.stashed_paths.drain(..) {
            self.keys.install_path(&path);
        }
        self.epoch = welcome.epoch;
        self.set_phase(ctx.now(), MemberPhase::Active);
        self.last_heard_ac = ctx.now();
        ctx.join_group(GroupId::from_index(welcome.group_raw as usize));
    }

    fn handle_join7(&mut self, ctx: &mut Context<'_>, ct: &[u8]) {
        let MemberPhase::AwaitJoin7 { nonce_ca } = self.phase else {
            return;
        };
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = self.decrypt(ct) else { return };
        let Ok(welcome) = Welcome::from_bytes(&plain) else {
            return;
        };
        if welcome.nonce_echo != nonce_ca.wrapping_add(1) {
            return;
        }
        self.install_welcome(ctx, welcome);
        self.timings.join_completed = Some(ctx.now());
        ctx.stats().bump("member-joins", 1);
    }

    fn handle_rejoin2(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        let MemberPhase::AwaitRejoin2 { nonce_cb } = self.phase else {
            return;
        };
        if Some(from) != self.rejoin_target {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = self.decrypt(ct) else { return };
        let mut r = Reader::new(&plain);
        let (Ok(echo), Ok(nonce_bc)) = (r.u64(), r.u64()) else {
            return;
        };
        if r.finish().is_err() || echo != nonce_cb.wrapping_add(1) {
            return;
        }
        let Some(ac_pub) = self.ac_pub.clone() else { return };
        let mut w = Writer::new();
        w.u64(nonce_bc.wrapping_add(1));
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct3) = HybridCiphertext::encrypt(&ac_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        self.set_phase(ctx.now(), MemberPhase::AwaitRejoin6);
        ctx.send(from, "rejoin", Msg::Rejoin3 { ct: ct3.to_bytes() }.to_bytes());
    }

    fn handle_rejoin6(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8], sig: &[u8]) {
        if self.phase != MemberPhase::AwaitRejoin6 || Some(from) != self.rejoin_target {
            return;
        }
        let Some(ac_pub) = self.ac_pub.clone() else { return };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !ac_pub.verify(ct, sig) {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = self.decrypt(ct) else { return };
        let Ok(welcome) = Welcome::from_bytes(&plain) else {
            return;
        };
        self.install_welcome(ctx, welcome);
        self.timings.rejoin_completed = Some(ctx.now());
        ctx.stats().bump("member-rejoins", 1);
    }

    fn handle_key_update(
        &mut self,
        ctx: &mut Context<'_>,
        area: AreaId,
        epoch: u64,
        body: &[u8],
        sig: &[u8],
    ) {
        if self.area != Some(area) || !self.is_active() {
            return;
        }
        // Verify the AC's signature over area ‖ epoch ‖ body.
        let Some(ac_pub) = &self.ac_pub else { return };
        let mut signed = Writer::new();
        signed.u32(area.0).u64(epoch).raw(body);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !ac_pub.verify(&signed.into_bytes(), sig) {
            return;
        }
        // Ordering guard: a late-arriving older update must never
        // overwrite newer keys (multicasts can be reordered by jitter).
        if epoch <= self.epoch {
            return;
        }
        // Entries are opened straight out of the frame (no decoded
        // entry list); the count prefix alone prices the work.
        let Ok(count) = Reader::new(body).u32() else {
            return;
        };
        let Ok(outcome) = self.keys.apply_encoded(body) else {
            return;
        };
        ctx.charge_compute(self.cost.symmetric_op.saturating_mul(count as u64));
        // Stale protecting keys, nothing decryptable, or a skipped epoch
        // all mean we missed an update (e.g. one multicast before we
        // subscribed to the group); ask the AC for a fresh path.
        if outcome.stale > 0 || outcome.learned == 0 || epoch > self.epoch + 1 {
            self.request_key_refresh(ctx);
        }
        self.epoch = epoch;
    }

    /// Rate-limited key-resynchronization request to the AC.
    fn request_key_refresh(&mut self, ctx: &mut Context<'_>) {
        if !self.is_active() {
            return;
        }
        let (Some(ac), Some(client)) = (self.ac_node, self.client) else {
            return;
        };
        // At most one request per T_idle.
        if self.last_refresh_request != Time::ZERO
            && ctx.now().since(self.last_refresh_request) < self.cfg.t_idle
        {
            return;
        }
        self.last_refresh_request = ctx.now();
        self.last_sent_ac = ctx.now();
        ctx.stats().bump("member-key-refreshes", 1);
        ctx.send(
            ac,
            "key-unicast",
            Msg::KeyRefreshRequest { client }.to_bytes(),
        );
    }

    fn handle_key_unicast(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = self.decrypt(ct) else { return };
        let Ok(path) = decode_path(&plain) else { return };
        match self.phase {
            MemberPhase::Active => self.keys.install_path(&path),
            // Mid-handshake with this AC: the welcome is still in
            // flight; stash so it is not clobbered by the (stale)
            // welcome path.
            MemberPhase::AwaitJoin7 { .. } | MemberPhase::AwaitRejoin6
                if Some(from) == self.ac_node || Some(from) == self.rejoin_target =>
            {
                self.stashed_paths.push(path);
            }
            _ => {}
        }
    }

    fn handle_data(&mut self, ctx: &mut Context<'_>, wrapped: &[u8], payload: &[u8]) {
        // Try the current area key first, then recently superseded ones
        // (a rotation multicast can be reordered with data by jitter).
        ctx.charge_compute(self.cost.symmetric_op);
        let Some(kr_bytes) = self
            .keys
            .area_keys_with_history()
            .iter()
            .find_map(|k| envelope::open(k, wrapped).ok())
        else {
            self.decrypt_failures += 1;
            self.request_key_refresh(ctx);
            return;
        };
        let Ok(kr) = <[u8; 16]>::try_from(kr_bytes.as_slice()) else {
            self.decrypt_failures += 1;
            return;
        };
        let mut plain = payload.to_vec();
        Rc4::new(&kr).apply_keystream(&mut plain);
        self.received.push(plain);
    }

    fn handle_takeover(&mut self, ctx: &mut Context<'_>, area: AreaId, sig: &[u8], from: NodeId) {
        if self.area != Some(area) {
            return;
        }
        let Some(backup_pub) = self.backup_pub.clone() else {
            return;
        };
        let mut w = Writer::new();
        w.u32(area.0);
        if !backup_pub.verify(&w.into_bytes(), sig) {
            return;
        }
        // The backup is now our AC.
        self.ac_node = Some(from);
        self.ac_pub = Some(backup_pub.clone());
        self.backup_node = None;
        self.backup_pub = None;
        self.last_heard_ac = ctx.now();
        // Keep the cached directory pointing at the live controller, so
        // a later ticket rejoin toward this area resolves its key.
        self.directory.upsert(crate::directory::AcInfo {
            area,
            node: from.index() as u32,
            pubkey: backup_pub.to_bytes(),
        });
        // The new controller's rekey lineage restarts from its replica
        // snapshot, which may trail (or, behind a partition, diverge
        // from) the epochs this member saw; restart epoch tracking and
        // fetch a fresh key path instead of comparing across lineages.
        self.epoch = 0;
        self.request_key_refresh(ctx);
    }

    /// Whether a join/rejoin handshake has been pending past the retry
    /// threshold (an unreachable counterpart, a lost message, ...).
    fn handshake_stuck(&self, now: Time) -> bool {
        let pending = matches!(
            self.phase,
            MemberPhase::AwaitJoin2 { .. }
                | MemberPhase::AwaitJoin5
                | MemberPhase::AwaitJoin7 { .. }
                | MemberPhase::AwaitRejoin2 { .. }
                | MemberPhase::AwaitRejoin6
        );
        pending
            && now.since(self.phase_since) >= self.cfg.member_disconnect_after().saturating_mul(2)
    }

    /// Restarts a stuck handshake: with a ticket, rotate to the next AC
    /// in the directory; once every cached entry has been tried (or
    /// without a ticket at all), re-register from scratch through the
    /// RS. The cached directory predates any failover, so a full
    /// rotation that lands nowhere means its entries are stale — dead
    /// or demoted nodes — and only the RS knows the successors.
    fn retry_handshake(&mut self, ctx: &mut Context<'_>) {
        ctx.stats().bump("member-handshake-retries", 1);
        if self.ticket.is_some() {
            let n = self.directory.entries.len();
            while self.rejoin_cursor < n {
                let target = self.directory.entries[self.rejoin_cursor].node;
                self.rejoin_cursor += 1;
                if self.start_rejoin(ctx, NodeId::from_index(target as usize)) {
                    return;
                }
            }
            self.rejoin_cursor = 0;
        }
        self.start_join(ctx);
    }

    fn on_disconnect_detected(&mut self, ctx: &mut Context<'_>) {
        self.disconnects_detected += 1;
        ctx.stats().bump("member-disconnects", 1);
        if !self.auto {
            return;
        }
        // Pick another AC from the directory (not the current one).
        let current = self.ac_node.map(|n| n.index() as u32);
        let target = self
            .directory
            .entries
            .iter()
            .find(|e| Some(e.node) != current)
            .map(|e| e.node);
        if let Some(t) = target {
            self.start_rejoin(ctx, NodeId::from_index(t as usize));
        }
    }
}

impl Node for Member {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.auto {
            self.start_join(ctx);
        }
        ctx.set_timer(self.cfg.t_active, TIMER_ALIVE);
        ctx.set_timer(self.cfg.t_idle, TIMER_DISCONNECT);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Ok(msg) = Msg::from_bytes(bytes) else {
            return;
        };
        if Some(from) == self.ac_node {
            self.last_heard_ac = ctx.now();
        }
        match msg {
            Msg::Join2 { ct } => self.handle_join2(ctx, &ct),
            Msg::Join5 { ct, sig } => self.handle_join5(ctx, &ct, &sig),
            Msg::Join7 { ct } => self.handle_join7(ctx, &ct),
            Msg::Rejoin2 { ct } => self.handle_rejoin2(ctx, from, &ct),
            Msg::Rejoin6 { ct, sig } => self.handle_rejoin6(ctx, from, &ct, &sig),
            Msg::RejoinDenied { reason } => {
                if reason == RejoinDenyReason::NotMember
                    && self.auto
                    && self.is_active()
                    && Some(from) == self.ac_node
                {
                    // Our controller evicted us while we were unreachable
                    // (or a promoted replica never knew us): its beacons
                    // look alive but every key refresh is refused. The
                    // session is dead — re-authenticate with the ticket,
                    // or re-register when the rejoin cannot start.
                    ctx.stats().bump("member-session-invalidated", 1);
                    if !self.start_rejoin(ctx, from) {
                        self.start_join(ctx);
                    }
                } else if matches!(
                    self.phase,
                    MemberPhase::AwaitRejoin2 { .. } | MemberPhase::AwaitRejoin6
                ) {
                    self.set_phase(ctx.now(), MemberPhase::Denied(reason));
                    ctx.stats().bump("member-rejoin-denied", 1);
                    // An expired/garbled ticket cannot be fixed by
                    // retrying: fall back to full registration.
                    if self.auto && reason == RejoinDenyReason::BadTicket {
                        self.ticket = None;
                        ctx.stats().bump("member-reregistrations", 1);
                        self.start_join(ctx);
                    }
                }
            }
            Msg::KeyUpdate {
                area,
                epoch,
                body,
                sig,
            } => self.handle_key_update(ctx, area, epoch, &body, &sig),
            Msg::KeyUnicast { ct } => self.handle_key_unicast(ctx, from, &ct),
            Msg::Data {
                wrapped_key,
                payload,
                ..
            } => self.handle_data(ctx, &wrapped_key, &payload),
            Msg::AcAlive { area, epoch }
                // A newer epoch in the alive beacon means we missed a
                // key-update multicast; resynchronize.
                if self.is_active() && self.area == Some(area) && epoch > self.epoch => {
                    self.epoch = epoch;
                    self.request_key_refresh(ctx);
                }
            Msg::Takeover { area, sig, .. } => self.handle_takeover(ctx, area, &sig, from),
            // Alive beacons that failed the resync guard above.
            Msg::AcAlive { .. } => {}
            // Traffic addressed to the RS, to ACs, or to replicas — a
            // member deliberately ignores it (listed explicitly so a new
            // wire message fails to compile until triaged here).
            Msg::Join1 { .. }
            | Msg::Join3 { .. }
            | Msg::Join4 { .. }
            | Msg::Join6 { .. }
            | Msg::Rejoin1 { .. }
            | Msg::Rejoin3 { .. }
            | Msg::Rejoin4 { .. }
            | Msg::Rejoin5 { .. }
            | Msg::AreaJoinReq { .. }
            | Msg::AreaJoinAck { .. }
            | Msg::KeyRefreshRequest { .. }
            | Msg::LeaveRequest { .. }
            | Msg::MemberAlive { .. }
            | Msg::Heartbeat { .. }
            | Msg::HeartbeatAck { .. }
            | Msg::StateSync { .. }
            | Msg::Demote { .. } => {}
        }
    }

    fn on_crashed_volatile_reset(&mut self) {
        // A member keeps no stable storage beyond what a real client
        // would hold on disk: its keypair and identity, the sealed
        // ticket (the paper's ski-pass — explicitly built to outlive
        // the session), the cached AC directory and last-known
        // controller addresses, and the data-plane sequence counter
        // (persisted so the ACs' replay dedup stays sound across a
        // restart). Session keys, handshake state and the group
        // subscription die with the process — forward secrecy means
        // they cannot be trusted after an outage anyway.
        self.phase = MemberPhase::Idle;
        self.group = None;
        self.keys.clear();
        self.epoch = 0;
        self.stashed_paths.clear();
        self.rejoin_target = None;
        self.rejoin_cursor = 0;
        self.last_heard_ac = Time::ZERO;
        self.last_sent_ac = Time::ZERO;
        self.last_refresh_request = Time::ZERO;
        self.phase_since = Time::ZERO;
    }

    fn on_restarted(&mut self, ctx: &mut Context<'_>) {
        ctx.stats().bump("member-restarts", 1);
        // The crash dropped both liveness timers; re-arm them and let
        // the disconnect detector start from a fresh clock.
        ctx.set_timer(self.cfg.t_active, TIMER_ALIVE);
        ctx.set_timer(self.cfg.t_idle, TIMER_DISCONNECT);
        self.last_heard_ac = ctx.now();
        if !self.auto {
            // Manually driven members never self-initiate a handshake;
            // the harness decides how the wiped client comes back.
            return;
        }
        // Re-enter the group with the durable ticket: rejoin the
        // last-known controller, or fall back to a full registration
        // when no ticket/controller survives.
        if !self.ac_node.is_some_and(|ac| self.start_rejoin(ctx, ac)) {
            self.start_join(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TIMER_ALIVE => {
                if self.is_active()
                    && ctx.now().since(self.last_sent_ac) >= self.cfg.t_active
                {
                    if let (Some(ac), Some(client)) = (self.ac_node, self.client) {
                        self.last_sent_ac = ctx.now();
                        ctx.send(ac, "alive", Msg::MemberAlive { client }.to_bytes());
                    }
                }
                ctx.set_timer(self.cfg.t_active, TIMER_ALIVE);
            }
            TIMER_DISCONNECT => {
                // Subscription expiry: re-register through the RS (the
                // ticket is no longer honored anywhere).
                if self.auto
                    && self.is_active()
                    && self.membership_expires.is_some_and(|t| ctx.now() > t)
                {
                    if let Some(g) = self.group.take() {
                        ctx.leave_group(g);
                    }
                    self.keys.clear();
                    self.ticket = None;
                    self.membership_expires = None;
                    ctx.stats().bump("member-reregistrations", 1);
                    self.start_join(ctx);
                } else if self.is_active()
                    && ctx.now().since(self.last_heard_ac) >= self.cfg.member_disconnect_after()
                {
                    self.on_disconnect_detected(ctx);
                } else if self.auto && self.handshake_stuck(ctx.now()) {
                    self.retry_handshake(ctx);
                }
                ctx.set_timer(self.cfg.t_idle, TIMER_DISCONNECT);
            }
            _ => {}
        }
    }
}
