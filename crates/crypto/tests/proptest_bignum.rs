//! Property-based tests for the bignum substrate.
//!
//! These are the algebraic laws RSA correctness rests on; a bug in any
//! of them would silently corrupt every protocol handshake.

use mykil_crypto::bignum::BigUint;
use proptest::prelude::*;

/// Strategy: a BigUint from up to 24 random bytes (covers 0..2^192).
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|v| BigUint::from_bytes_be(&v))
}

/// Strategy: a nonzero BigUint.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|n| if n.is_zero() { BigUint::one() } else { n })
}

proptest! {
    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_then_sub_round_trips(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn square_matches_self_mul(a in biguint()) {
        prop_assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn division_invariant(a in biguint(), b in biguint_nonzero()) {
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..48)) {
        let n = BigUint::from_bytes_be(&data);
        let round = BigUint::from_bytes_be(&n.to_bytes_be());
        prop_assert_eq!(n, round);
    }

    #[test]
    fn shift_round_trip(a in biguint(), bits in 0usize..100) {
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
    }

    #[test]
    fn shl_is_mul_by_power(a in biguint(), bits in 0usize..64) {
        let p = BigUint::one().shl_bits(bits);
        prop_assert_eq!(a.shl_bits(bits), &a * &p);
    }

    #[test]
    fn modpow_product_law(
        a in biguint(),
        e1 in 0u64..200,
        e2 in 0u64..200,
        m in biguint_nonzero(),
    ) {
        // a^(e1+e2) == a^e1 * a^e2 (mod m), for m > 1
        prop_assume!(!m.is_one());
        let lhs = a.modpow(&BigUint::from(e1 + e2), &m).unwrap();
        let rhs = (&a.modpow(&BigUint::from(e1), &m).unwrap()
            * &a.modpow(&BigUint::from(e2), &m).unwrap())
            .rem(&m)
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modpow_is_reduced(a in biguint(), e in 0u64..50, m in biguint_nonzero()) {
        let r = a.modpow(&BigUint::from(e), &m).unwrap();
        prop_assert!(r < m);
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).unwrap().is_zero());
        prop_assert!(b.rem(&g).unwrap().is_zero());
    }

    #[test]
    fn mod_inverse_is_inverse(a in biguint_nonzero(), m in biguint_nonzero()) {
        prop_assume!(!m.is_one());
        if let Ok(inv) = a.mod_inverse(&m) {
            let prod = (&a * &inv).rem(&m).unwrap();
            prop_assert!(prod.is_one());
        }
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in biguint(), b in biguint()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}
