//! Failure detection and recovery at the area controller
//! (Sections IV-A and IV-C of the paper).
//!
//! - the AC multicasts `alive` after `T_idle` of multicast silence;
//! - members silent for `5·T_active` are unilaterally evicted (a
//!   batched leave);
//! - a parent area silent for `5·T_idle` triggers a parent switch: a
//!   signed area-join exchange with a preferred alternative controller.

use super::{AreaController, ParentLink, RejoinStage, TIMER_IDLE_ALIVE, TIMER_PARENT_CHECK, TIMER_REKEY, TIMER_SWEEP};
use crate::durable::AcWalRecord;
use crate::identity::{AreaId, ClientId};
use crate::msg::{Msg, RejoinDenyReason};
use crate::rekey::decode_path;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope::HybridCiphertext;
use mykil_net::{Context, GroupId, NodeId, Time};
use mykil_tree::MemberId;

impl AreaController {
    /// `T_idle` tick: multicast `alive` when the area has been quiet.
    pub(crate) fn tick_idle_alive(&mut self, ctx: &mut Context<'_>) {
        if ctx.now().since(self.last_area_mcast) >= self.cfg.t_idle {
            ctx.multicast(
                self.deploy.group,
                "alive",
                Msg::AcAlive {
                    area: self.deploy.area,
                    epoch: self.epoch,
                }
                .to_bytes(),
            );
            self.last_area_mcast = ctx.now();
        }
        ctx.set_timer(self.cfg.t_idle, TIMER_IDLE_ALIVE);
    }

    /// Periodic sweep: evict silent or expired members, time out
    /// rejoin-verification waits.
    pub(crate) fn tick_sweep(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let evict_after = self.cfg.ac_evict_after();
        let stale: Vec<ClientId> = self
            .members
            .iter()
            .filter(|(_, rec)| {
                now.since(rec.last_heard) >= evict_after || now > rec.valid_until
            })
            .map(|(c, _)| *c)
            .collect();
        let mut changed = false;
        for client in stale {
            self.queue_leave(client);
            // Durable before effective: a crash right after the sweep
            // must not resurrect the evicted member on recovery.
            self.wal_commit_record(ctx, &AcWalRecord::Evict { client: client.0 });
            self.stats.evictions += 1;
            ctx.stats().bump("ac-evictions", 1);
            changed = true;
        }
        if changed {
            self.after_membership_change(ctx);
        }

        // Rejoins stuck waiting on an unreachable previous AC.
        let expired: Vec<NodeId> = self
            .pending_rejoins
            .iter()
            .filter(|(_, p)| p.stage == RejoinStage::AwaitPrevAc && now >= p.deadline)
            .map(|(n, _)| *n)
            .collect();
        for node in expired {
            self.resolve_unverified_rejoin(ctx, node);
        }

        ctx.set_timer(self.cfg.t_active, TIMER_SWEEP);
    }

    /// Freshness timer: flush pending updates even without data traffic
    /// (the second rekey trigger of Section III-E).
    pub(crate) fn tick_rekey(&mut self, ctx: &mut Context<'_>) {
        if self.update_needed {
            self.flush_key_updates(ctx);
            self.sync_backup(ctx);
        } else if self.cfg.idle_freshness_rekey && self.tree.member_count() > 0 {
            self.freshness_rotate(ctx);
        }
        ctx.set_timer(self.cfg.rekey_interval, TIMER_REKEY);
    }

    /// Rotates only the area key, multicast under its previous value —
    /// the periodic freshness rekey of Section III-E.
    pub(crate) fn freshness_rotate(&mut self, ctx: &mut Context<'_>) {
        self.note_area_key();
        let plan = self.tree.rotate_area_key(ctx.rng());
        self.epoch += 1;
        // The plan's single change carries (PreviousSelf, old key), so the
        // streaming encoder seals under the superseded area key directly.
        let mut w = crate::wire::Writer::with_capacity(crate::rekey::entries_wire_len(&plan));
        crate::rekey::write_entries_from_plan(&plan, ctx.rng(), &mut w);
        let body = w.into_bytes();
        let signed = self.key_update_signed_bytes(&body, self.epoch);
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self.keypair.sign(&signed);
        ctx.multicast(
            self.deploy.group,
            "key-update",
            Msg::KeyUpdate {
                area: self.deploy.area,
                epoch: self.epoch,
                body,
                sig,
            }
            .to_bytes(),
        );
        self.last_area_mcast = ctx.now();
        self.stats.rekeys += 1;
        ctx.stats().bump("ac-freshness-rekeys", 1);
        // The epoch advanced: keep the durable image in step.
        self.persist_checkpoint(ctx);
        self.sync_backup(ctx);
    }

    /// Parent-liveness check: switch parents after `5·T_idle` of
    /// silence.
    pub(crate) fn tick_parent_check(&mut self, ctx: &mut Context<'_>) {
        if self.parent.is_some()
            && ctx.now().since(self.last_heard_parent) >= self.cfg.member_disconnect_after()
        {
            self.start_parent_switch(ctx);
        }
        ctx.set_timer(self.cfg.t_idle, TIMER_PARENT_CHECK);
    }

    /// Picks the next preferred parent and sends a signed area-join
    /// request (Section IV-C).
    ///
    /// Consecutive attempts rotate through `deploy.preferred_parents`
    /// (cursor-based), so a dead first candidate cannot absorb every
    /// retry while live alternatives sit unused. Each preferred area
    /// contributes two candidates: its primary and, when the
    /// deployment registers one, its backup — after a failover the
    /// area's live controller is the backup node, and a rotation that
    /// only knows primaries would retry a demoted (or dead) node
    /// forever.
    pub(crate) fn start_parent_switch(&mut self, ctx: &mut Context<'_>) {
        let current = self.parent.as_ref().map(|p| p.node);
        let mut candidates: Vec<ParentLink> = Vec::new();
        for p in &self.deploy.preferred_parents {
            candidates.push(p.clone());
            if let Some(b) = self.deploy.backups.by_area(p.area) {
                candidates.push(ParentLink {
                    node: NodeId::from_index(b.node as usize),
                    area: p.area,
                    group: p.group,
                });
            }
        }
        let n = candidates.len();
        let mut chosen = None;
        for i in 0..n {
            let idx = (self.parent_switch_cursor + i) % n;
            let cand = &candidates[idx];
            if Some(cand.node) != current && cand.node != ctx.id() {
                chosen = Some((idx, cand.clone()));
                break;
            }
        }
        let Some((idx, next)) = chosen else {
            return;
        };
        self.parent_switch_cursor = (idx + 1) % n;
        let Some(next_pub) = self.directory_pubkey(next.node) else {
            return;
        };
        let mut w = Writer::new();
        w.u32(self.deploy.area.0).u64(ctx.now().as_micros());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct) = HybridCiphertext::encrypt(&next_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        let ct = ct.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self.keypair.sign(&ct);
        ctx.stats().bump("ac-parent-switch-attempts", 1);
        // Supersede any older in-flight request: only the latest target
        // may answer, and its request rides the reliable channel.
        if let Some((_, old)) = self.pending_parent_join.take() {
            ctx.cancel_reliable(old);
        }
        let token =
            ctx.send_reliable(next.node, "area-join", Msg::AreaJoinReq { ct, sig }.to_bytes());
        self.pending_parent_join = Some((next.node, token));
        // Stop treating the dead parent as alive; the ack installs the
        // replacement.
        self.last_heard_parent = ctx.now();
    }

    /// Handles an area-join request from a prospective child controller.
    pub(crate) fn handle_area_join_req(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        ct: &[u8],
        sig: &[u8],
    ) {
        let Some(child_pub) = self.directory_pubkey(from) else {
            return;
        };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !child_pub.verify(ct, sig) {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let child_area = AreaId(r.u32().ok()?);
            let ts = Time::from_micros(r.u64().ok()?);
            r.finish().ok()?;
            Some((child_area, ts))
        })();
        let Some((child_area, ts)) = parsed else {
            return;
        };
        if !self.fresh_timestamp(ctx.now(), ts) {
            return;
        }
        // Enroll the child AC as a member of this area's tree.
        self.note_area_key();
        let member = MemberId(super::AC_MEMBER_BASE + child_area.0 as u64);
        if self.tree.contains(member) {
            let _ = self.tree.leave(member, ctx.rng());
        }
        // The membership was cleared just above; refusal means the tree
        // and the child registry drifted — reject the enrollment.
        let Ok(plan) = self.tree.join(member, ctx.rng()) else {
            ctx.stats().bump("ac-admissions-rejected", 1);
            return;
        };
        self.child_ac_members.insert(member.0, from);
        self.buffer_join_plan(&plan);
        self.send_displaced_unicasts(ctx, &plan, member);
        self.update_needed = true;
        self.child_acs.insert(from);
        let path_bytes = plan
            .unicasts
            .iter()
            .find(|u| u.member == member)
            .map(|u| crate::rekey::encode_tree_path(&u.keys))
            .unwrap_or_else(|| crate::rekey::encode_path(&[]));

        // Ack: {my area, my group, my rekey epoch, the child's path
        // keys, ts}, sealed to the child and signed.
        let mut w = Writer::new();
        w.u32(self.deploy.area.0)
            .u32(self.deploy.group.index() as u32)
            .u64(self.epoch)
            .bytes(&path_bytes)
            .u64(ctx.now().as_micros());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ack_ct) = HybridCiphertext::encrypt(&child_pub, &w.into_bytes(), ctx.rng())
        else {
            return;
        };
        let ack_ct = ack_ct.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let ack_sig = self.keypair.sign(&ack_ct);
        // Reliable: a lost ack would otherwise strand the child with a
        // transport-acknowledged request and no installed parent.
        ctx.send_reliable(
            from,
            "area-join",
            Msg::AreaJoinAck { ct: ack_ct, sig: ack_sig }.to_bytes(),
        );
        self.after_membership_change(ctx);
    }

    /// Installs a new parent from an area-join acknowledgement.
    ///
    /// Only the node targeted by the in-flight switch/enrollment may
    /// answer: an ack from anyone else — a replayed exchange, a stale
    /// candidate from an earlier attempt, or an impostor in the
    /// directory — is dropped before any crypto work.
    pub(crate) fn handle_area_join_ack(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        ct: &[u8],
        sig: &[u8],
    ) {
        match self.pending_parent_join {
            Some((target, _)) if target == from => {}
            _ => {
                ctx.stats().bump("ac-ack-unexpected", 1);
                return;
            }
        }
        let Some(parent_pub) = self.directory_pubkey(from) else {
            return;
        };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !parent_pub.verify(ct, sig) {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let parent_area = AreaId(r.u32().ok()?);
            let group_raw = r.u32().ok()?;
            let parent_epoch = r.u64().ok()?;
            let path = decode_path(r.bytes().ok()?).ok()?;
            let ts = Time::from_micros(r.u64().ok()?);
            r.finish().ok()?;
            Some((parent_area, group_raw, parent_epoch, path, ts))
        })();
        let Some((parent_area, group_raw, parent_epoch, path, ts)) = parsed else {
            return;
        };
        if !self.fresh_timestamp(ctx.now(), ts) {
            return;
        }
        // Leave the old parent's multicast group, join the new one.
        if let Some(old) = &self.parent {
            ctx.leave_group(old.group);
        }
        let link = ParentLink {
            node: from,
            area: parent_area,
            group: GroupId::from_index(group_raw as usize),
        };
        ctx.join_group(link.group);
        self.parent = Some(link);
        // The exchange completed; stop any still-pending retransmission
        // of the request.
        if let Some((_, token)) = self.pending_parent_join.take() {
            ctx.cancel_reliable(token);
        }
        self.parent_keys.clear();
        self.parent_keys.install_path(&path);
        self.parent_epoch = parent_epoch;
        self.last_heard_parent = ctx.now();
        self.stats.parent_switches += 1;
        ctx.stats().bump("ac-parent-switches", 1);
        // The parent link is part of the checkpoint image; a recovered
        // node must rejoin the hierarchy where it left off.
        self.persist_checkpoint(ctx);
        self.sync_backup(ctx);
    }

    /// Key updates from the parent area (this AC is a member there).
    pub(crate) fn handle_parent_key_update(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        area: AreaId,
        epoch: u64,
        body: &[u8],
        sig: &[u8],
    ) {
        let Some(parent) = &self.parent else { return };
        if parent.node != from || parent.area != area {
            return;
        }
        let Some(parent_pub) = self.directory_pubkey(from) else {
            return;
        };
        let mut signed = Writer::new();
        signed.u32(area.0).u64(epoch).raw(body);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !parent_pub.verify(&signed.into_bytes(), sig) {
            return;
        }
        // Ordering guard: never let a reordered older update revert
        // newer parent-area keys.
        if epoch <= self.parent_epoch {
            return;
        }
        // Entries are opened straight out of the frame (no decoded
        // entry list); the count prefix alone prices the work.
        let Ok(count) = Reader::new(body).u32() else {
            return;
        };
        let Ok(outcome) = self.parent_keys.apply_encoded(body) else {
            return;
        };
        ctx.charge_compute(self.cost.symmetric_op.saturating_mul(count as u64));
        if outcome.stale > 0 || outcome.learned == 0 || epoch > self.parent_epoch + 1 {
            self.request_parent_key_refresh(ctx);
        }
        self.parent_epoch = epoch;
    }

    /// Asks the parent controller to re-send this AC's key path in the
    /// parent tree (missed-update recovery).
    pub(crate) fn request_parent_key_refresh(&mut self, ctx: &mut Context<'_>) {
        let Some(parent) = &self.parent else { return };
        let me = ClientId(super::AC_MEMBER_BASE + self.deploy.area.0 as u64);
        ctx.send(
            parent.node,
            "key-unicast",
            Msg::KeyRefreshRequest { client: me }.to_bytes(),
        );
    }

    /// Serves key-refresh requests from area members and child ACs.
    pub(crate) fn handle_key_refresh(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        client: ClientId,
    ) {
        if client.0 >= super::AC_MEMBER_BASE {
            // A child controller: re-send its path in this tree.
            if self.child_ac_members.get(&client.0) != Some(&from) {
                // An unknown child controller believes it is enrolled
                // here (we evicted it during a partition, or a takeover
                // snapshot predates its enrollment). Dropping the
                // request silently would strand it: our alive beacons
                // keep its parent-silence detector happy while every
                // rekey passes it by. Tell it the session is dead.
                self.deny_rejoin(ctx, from, RejoinDenyReason::NotMember);
                return;
            }
            let mut path = Vec::new();
            if self
                .tree
                .path_keys_into(mykil_tree::MemberId(client.0), &mut path)
                .is_err()
            {
                return;
            }
            let Some(pubkey) = self.directory_pubkey(from) else {
                return;
            };
            ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
            if let Ok(ct) = HybridCiphertext::encrypt(
                &pubkey,
                &crate::rekey::encode_tree_path(&path),
                ctx.rng(),
            ) {
                ctx.send(
                    from,
                    "key-unicast",
                    Msg::KeyUnicast { ct: ct.to_bytes() }.to_bytes(),
                );
            }
            return;
        }
        match self.members.get(&client) {
            Some(r) if r.node == from => {
                if let Some(rec) = self.members.get_mut(&client) {
                    rec.last_heard = ctx.now();
                }
                self.unicast_current_path(ctx, client);
            }
            // Someone else's client id: stay silent, a NACK here would
            // let a spoofer invalidate the real member's session.
            Some(_) => {}
            // Evicted (or never admitted): the requester's session is
            // dead — say so, or it stays keyless while our beacons keep
            // its disconnect detector quiet.
            None => self.deny_rejoin(ctx, from, RejoinDenyReason::NotMember),
        }
    }

    /// Unicast key refreshes from the parent (displacement or batch
    /// refresh — the AC is just another member of the parent area).
    pub(crate) fn handle_parent_key_unicast(&mut self, ctx: &mut Context<'_>, ct: &[u8]) {
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        if let Ok(path) = decode_path(&plain) {
            self.parent_keys.install_path(&path);
        }
    }

    /// A neighboring controller's backup took over; repoint the parent
    /// link if it was our parent.
    pub(crate) fn handle_neighbor_takeover(
        &mut self,
        _ctx: &mut Context<'_>,
        from: NodeId,
        area: AreaId,
        sig: &[u8],
        pubkey: &[u8],
    ) {
        let Some(parent) = &self.parent else { return };
        if parent.area != area {
            return;
        }
        // Validate against the deployment's backup key for that area —
        // a takeover claim must come from the area's registered backup.
        let Some(expected) = self.deploy.backups.by_area(area) else {
            return;
        };
        if expected.pubkey != pubkey {
            return;
        }
        let Ok(pk) = mykil_crypto::rsa::RsaPublicKey::from_bytes(pubkey) else {
            return;
        };
        let mut w = Writer::new();
        w.u32(area.0);
        if !pk.verify(&w.into_bytes(), sig) {
            return;
        }
        self.parent = Some(ParentLink {
            node: from,
            area,
            group: parent.group,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::AreaController;
    use crate::group::GroupBuilder;
    use crate::wire::Writer;
    use mykil_crypto::drbg::Drbg;
    use mykil_crypto::envelope::HybridCiphertext;
    use mykil_net::NodeId;

    /// Regression: a well-formed, freshly-timestamped `AreaJoinAck`
    /// from a directory-listed controller that was never asked must be
    /// dropped. Before the in-flight-target gate, it silently rewired
    /// the parent link.
    #[test]
    fn unsolicited_area_join_ack_is_dropped() {
        let mut g = GroupBuilder::new(93).areas(3).build();
        g.settle();
        let ac1 = g.primaries[1];
        let ac2 = g.primaries[2];

        // Craft a fully valid ack as AC2 would send it: sealed to AC1,
        // signed by AC2, fresh timestamp, empty path.
        let (ac2_keypair, ac2_area, ac2_group) =
            g.sim.invoke(ac2, |ac: &mut AreaController, _ctx| {
                (ac.keypair.clone(), ac.deploy.area, ac.deploy.group)
            });
        let ac1_pub = g
            .sim
            .invoke(ac1, |ac: &mut AreaController, _ctx| ac.keypair.public().clone());
        let mut w = Writer::new();
        w.u32(ac2_area.0)
            .u32(ac2_group.index() as u32)
            .u64(7)
            .bytes(&crate::rekey::encode_path(&[]))
            .u64(g.sim.now().as_micros());
        let mut rng = Drbg::from_seed(17);
        let ct = HybridCiphertext::encrypt(&ac1_pub, &w.into_bytes(), &mut rng)
            .expect("encrypt")
            .to_bytes();
        let sig = ac2_keypair.sign(&ct);

        let parent_before = g.sim.node::<AreaController>(ac1).parent.clone();
        assert_eq!(parent_before.as_ref().map(|p| p.area.0), Some(0));

        // No switch is in flight: the ack is unsolicited and must die
        // at the gate, before signature or timestamp checks even run.
        g.sim.invoke(ac1, |ac: &mut AreaController, ctx| {
            ac.handle_area_join_ack(ctx, ac2, &ct, &sig);
        });
        let ac1_state = g.sim.node::<AreaController>(ac1);
        assert_eq!(
            ac1_state.parent.as_ref().map(|p| p.area.0),
            Some(0),
            "unsolicited ack rewired the parent link"
        );
        assert_eq!(ac1_state.stats.parent_switches, 0);
        assert_eq!(g.stats().counter("ac-ack-unexpected"), 1);

        // Control: the *same bytes* are accepted once AC2 really is the
        // in-flight target — proving the gate, not crypto or
        // freshness, rejected the replay above.
        g.sim.invoke(ac1, |ac: &mut AreaController, ctx| {
            let token = ctx.send_reliable(ac2, "area-join", Vec::new());
            ac.pending_parent_join = Some((ac2, token));
            ac.handle_area_join_ack(ctx, ac2, &ct, &sig);
        });
        let ac1_state = g.sim.node::<AreaController>(ac1);
        assert_eq!(ac1_state.parent.as_ref().map(|p| p.node), Some(ac2));
        assert!(ac1_state.pending_parent_join.is_none());
    }

    /// An ack from a *different* live candidate than the one currently
    /// targeted is also dropped — stale answers from earlier rotation
    /// attempts must not race the newest request.
    #[test]
    fn ack_from_stale_switch_target_is_dropped() {
        let mut g = GroupBuilder::new(94).areas(3).build();
        g.settle();
        let ac1 = g.primaries[1];
        let ac2 = g.primaries[2];

        let (ac2_keypair, ac2_area, ac2_group) =
            g.sim.invoke(ac2, |ac: &mut AreaController, _ctx| {
                (ac.keypair.clone(), ac.deploy.area, ac.deploy.group)
            });
        let ac1_pub = g
            .sim
            .invoke(ac1, |ac: &mut AreaController, _ctx| ac.keypair.public().clone());
        let mut w = Writer::new();
        w.u32(ac2_area.0)
            .u32(ac2_group.index() as u32)
            .u64(9)
            .bytes(&crate::rekey::encode_path(&[]))
            .u64(g.sim.now().as_micros());
        let mut rng = Drbg::from_seed(18);
        let ct = HybridCiphertext::encrypt(&ac1_pub, &w.into_bytes(), &mut rng)
            .expect("encrypt")
            .to_bytes();
        let sig = ac2_keypair.sign(&ct);

        // The in-flight switch targets some other node entirely.
        let decoy = NodeId::from_index(0);
        g.sim.invoke(ac1, |ac: &mut AreaController, ctx| {
            let token = ctx.send_reliable(decoy, "area-join", Vec::new());
            ac.pending_parent_join = Some((decoy, token));
            ac.handle_area_join_ack(ctx, ac2, &ct, &sig);
        });
        let ac1_state = g.sim.node::<AreaController>(ac1);
        assert_eq!(ac1_state.parent.as_ref().map(|p| p.area.0), Some(0));
        assert_eq!(ac1_state.pending_parent_join.as_ref().map(|p| p.0), Some(decoy));
        assert_eq!(g.stats().counter("ac-ack-unexpected"), 1);
    }
}
