//! Closed-form cost models from Section V of the Mykil paper.
//!
//! The paper's evaluation mixes prototype measurements with back-of-the-
//! envelope arithmetic over three protocols: **Iolus** (flat subgroups,
//! pairwise keys), **LKH** (one global key tree), and **Mykil** (areas
//! with a key tree per area). This crate reproduces that arithmetic:
//!
//! - [`storage`] — bytes of key material per member and per controller
//!   (Section V-A)
//! - [`cpu`] — how many members re-derive how many keys on a leave event
//!   (Section V-B)
//! - [`bandwidth`] — key-update message sizes for join and leave events,
//!   with and without leave aggregation (Section V-C, Figures 8–10)
//!
//! Each model takes a [`Params`] describing the deployment. The
//! simulation crates measure the same quantities from live trees; the
//! workspace integration tests assert the two agree.

pub mod bandwidth;
pub mod latency;
pub mod cpu;
pub mod storage;

/// Deployment parameters shared by all models.
///
/// Defaults mirror the paper's running example: 100,000 members, 20
/// areas (5,000 members each), 128-bit symmetric keys, 2048-bit RSA,
/// binary key trees (the shape behind the paper's own arithmetic — see
/// `EXPERIMENTS.md` for the arity discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Total group size `n`.
    pub members: u64,
    /// Number of Mykil areas (Iolus subgroups).
    pub areas: u64,
    /// Symmetric key length in bytes.
    pub key_len: u64,
    /// RSA modulus length in bytes (public-key storage).
    pub rsa_len: u64,
    /// Key-tree arity for LKH and Mykil.
    pub arity: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            members: 100_000,
            areas: 20,
            key_len: 16,
            rsa_len: 256,
            arity: 2,
        }
    }
}

impl Params {
    /// The paper's running example (100k members, 20 areas).
    pub fn paper() -> Params {
        Params::default()
    }

    /// Same deployment with a different number of areas (the x-axis of
    /// Figures 8–10).
    pub fn with_areas(self, areas: u64) -> Params {
        Params { areas, ..self }
    }

    /// Members per area, rounded up.
    pub fn area_size(&self) -> u64 {
        self.members.div_ceil(self.areas.max(1))
    }

    /// Key-tree height for a tree with `leaves` leaves:
    /// `ceil(log_arity(leaves))`, minimum 1.
    pub fn tree_height(&self, leaves: u64) -> u64 {
        if leaves <= 1 {
            return 1;
        }
        let mut h = 0u64;
        let mut cap = 1u64;
        while cap < leaves {
            cap = cap.saturating_mul(self.arity);
            h += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = Params::paper();
        assert_eq!(p.members, 100_000);
        assert_eq!(p.area_size(), 5_000);
        assert_eq!(p.with_areas(10).area_size(), 10_000);
    }

    #[test]
    fn tree_height_binary() {
        let p = Params::paper();
        // Paper arithmetic: ~17 levels for 100k, ~13 for 5k (binary).
        assert_eq!(p.tree_height(100_000), 17);
        assert_eq!(p.tree_height(5_000), 13);
        assert_eq!(p.tree_height(1), 1);
        assert_eq!(p.tree_height(2), 1);
        assert_eq!(p.tree_height(3), 2);
    }

    #[test]
    fn tree_height_quad() {
        let p = Params {
            arity: 4,
            ..Params::paper()
        };
        assert_eq!(p.tree_height(100_000), 9);
        assert_eq!(p.tree_height(5_000), 7);
        assert_eq!(p.tree_height(4), 1);
        assert_eq!(p.tree_height(5), 2);
    }

    #[test]
    fn area_size_rounds_up() {
        let p = Params {
            members: 10,
            areas: 3,
            ..Params::paper()
        };
        assert_eq!(p.area_size(), 4);
    }
}
