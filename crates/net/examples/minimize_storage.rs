//! Exhaustive backend-equivalence search for the stable-storage layer.
//!
//! Enumerates every operation/fault sequence up to a fixed length and
//! checks that `SimStore` and `FaultyStore<FileStore>` agree on every
//! observable (recovered checkpoint payload, WAL suffix, durable-state
//! flag, counters). The proptest in `tests/proptest_storage.rs` samples
//! this space randomly; this brute-forces it to a minimal counter-
//! example when the proptest reports a divergence:
//!
//! ```text
//! cargo run --release -p mykil-net --example minimize_storage
//! ```
//!
//! It has already earned its keep: it minimized the double-corruption
//! resurrection bug (`[K, CC, CS0]` — an XOR-based slot corruption is
//! an involution) that the proptest first surfaced.

use mykil_net::{scratch_dir, FaultyStore, FileStore, SimStore, StableStore, StoreFault};

#[derive(Debug, Clone, Copy)]
enum Op {
    /// wal_append
    A,
    /// wal_commit
    C,
    /// sync
    S,
    /// checkpoint
    K,
    /// on_crash
    Crash,
    /// arm lost-tail
    LT,
    /// arm torn-write
    TT,
    /// corrupt_latest_checkpoint
    CC,
    /// corrupt slot 0
    CS0,
    /// corrupt slot 1
    CS1,
    /// heal
    H,
}
use Op::*;

fn apply(store: &mut dyn StableStore, ops: &[Op]) {
    for (i, op) in ops.iter().enumerate() {
        let pl = vec![i as u8 + 1; 3];
        match op {
            A => store.wal_append(pl),
            C => store.wal_commit(pl),
            S => store.sync(),
            K => store.checkpoint(pl),
            Crash => {
                store.on_crash();
            }
            LT => store.arm_lying_sync(false),
            TT => store.arm_lying_sync(true),
            CC => store.corrupt_latest_checkpoint(),
            CS0 => {
                store.inject(StoreFault::CorruptSlot(0));
            }
            CS1 => {
                store.inject(StoreFault::CorruptSlot(1));
            }
            H => store.heal(),
        }
    }
}

type View = (Option<Vec<u8>>, Vec<Vec<u8>>, bool, u64, u64);

fn view(store: &dyn StableStore) -> View {
    let r = store.load();
    (
        r.checkpoint.map(|(_, p)| p),
        r.wal,
        store.has_durable_state(),
        store.sync_count(),
        store.checkpoint_count(),
    )
}

fn main() {
    let alphabet = [A, C, S, K, Crash, LT, TT, CC, CS0, CS1, H];
    for len in 1..=4usize {
        let total = alphabet.len().pow(len as u32);
        let mut diverged = false;
        for n in 0..total {
            let mut seq = Vec::with_capacity(len);
            let mut x = n;
            for _ in 0..len {
                seq.push(alphabet[x % alphabet.len()]);
                x /= alphabet.len();
            }
            let mut sim = SimStore::new();
            let dir = scratch_dir("minimize");
            let mut wrapped = match FileStore::open(&dir) {
                Ok(f) => FaultyStore::new(f),
                Err(e) => panic!("open {}: {e}", dir.display()),
            };
            apply(&mut sim, &seq);
            apply(&mut wrapped, &seq);
            let vs = view(&sim);
            let vw = view(&wrapped);
            let _ = std::fs::remove_dir_all(&dir);
            if vs != vw {
                println!(
                    "len {len} DIVERGES: {seq:?}\n  sim:  {vs:?}\n  file: {vw:?}"
                );
                diverged = true;
                break;
            }
        }
        if diverged {
            std::process::exit(1);
        }
        println!("len {len}: all {total} sequences agree");
    }
}
