//! Pluggable key storage behind the auxiliary tree.
//!
//! The tree structure (arena, parent links, occupancy) is backend
//! independent; what differs is where node *keys* live. [`KeyStore`]
//! abstracts that: [`ExplicitKeys`] stores every key — the paper's
//! design, O(n) resident key material per area — while [`KhfKeys`]
//! derives keys on demand from a keyed-hash forest and stores only the
//! 32-byte forest secret plus explicit overrides for leave-style
//! rotations, making resident key bytes O(updated set).
//!
//! # KHF derivation labels
//!
//! Derivation is rooted in an AC-only forest secret `F` (members only
//! ever receive key *values* through rekey plans, never `F` or any
//! node secret, so HMAC preimage resistance keeps unseen keys secret):
//!
//! ```text
//! secret(root)  = F
//! secret(n)     = HMAC-SHA256(secret(parent(n)), "mykil-khf-node" || n as u64 BE)
//! key(n, v)     = HMAC-SHA256(secret(n), "mykil-khf-key" || v as u64 BE)[..16]
//! ```
//!
//! A *derivable* rotation (join-style: old holders may keep reading
//! under the previous key) just bumps the version, so the fresh key
//! costs zero storage. A *fresh* rotation (leave-style: the new key
//! must be independent of everything a departed member could ever have
//! been shown, and of the static forest in case a subtree secret was
//! delegated) draws a random key and records it in the override map.
//! A later derivable rotation on the same node drops the override and
//! returns the node to the forest.

use mykil_crypto::hmac::hmac_sha256;
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::SYMMETRIC_KEY_LEN;
use rand::RngCore;
use std::collections::BTreeMap;

/// How a key rotation may be produced by a derivation-based backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotateStyle {
    /// Join-style: every current holder of the old key is allowed to
    /// see the new one, so a version-bumped derived key is acceptable.
    Derivable,
    /// Leave-style: the new key must be independent of the derivation
    /// forest (forward secrecy against secret delegation), so the
    /// backend must draw fresh randomness.
    Fresh,
}

/// Key storage backend for [`Tree`](crate::tree::Tree).
///
/// Node indices are arena indices (`NodeIdx::raw`); versions are the
/// per-node counters bumped by every rotation. The snapshot hooks are
/// internal plumbing for `snapshot.rs` and not meant to be called
/// directly.
pub trait KeyStore: Clone + std::fmt::Debug {
    /// Magic prefix of this backend's snapshot format.
    const SNAPSHOT_MAGIC: &'static [u8; 4];

    /// The [`TreeBackend`](crate::tree::TreeBackend) tag this store
    /// implements (so a restored tree's config reports it correctly).
    const BACKEND: crate::tree::TreeBackend;

    /// Creates storage holding only the root key (node 0, version 0).
    fn new_root<R: RngCore + ?Sized>(rng: &mut R) -> Self;

    /// Registers a newly allocated node (version 0). Nodes arrive in
    /// index order; `parent` is `None` only for the root.
    fn on_alloc<R: RngCore + ?Sized>(&mut self, node: usize, parent: Option<usize>, rng: &mut R);

    /// The key of `node` at `version`, owned.
    fn key(&self, node: usize, version: u64) -> SymmetricKey;

    /// Rotates `node` from `old_version` to `old_version + 1`,
    /// returning the **previous** key (the caller records it in a plan
    /// or lets it drop and zeroize).
    fn rotate<R: RngCore + ?Sized>(
        &mut self,
        node: usize,
        old_version: u64,
        style: RotateStyle,
        rng: &mut R,
    ) -> SymmetricKey;

    /// Bytes of key material resident in memory (the controller
    /// storage cost perfgate tracks per backend).
    fn resident_key_bytes(&self) -> usize;

    // ---- snapshot plumbing (see `snapshot.rs`) ----

    /// Empty storage for restore; nodes arrive via
    /// [`Self::restore_node`], backend state via [`Self::restore_tail`].
    #[doc(hidden)]
    fn restore_shell(capacity: usize) -> Self;

    /// Writes this backend's per-node snapshot field (the 16 key bytes
    /// for explicit storage; nothing for derived storage).
    #[doc(hidden)]
    fn snapshot_node(&self, node: usize, out: &mut Vec<u8>);

    /// Reads back what [`Self::snapshot_node`] wrote, consuming from
    /// the front of `input`.
    #[doc(hidden)]
    fn restore_node(
        &mut self,
        node: usize,
        parent: Option<usize>,
        input: &mut &[u8],
    ) -> Result<(), &'static str>;

    /// Writes this backend's trailing snapshot section.
    #[doc(hidden)]
    fn snapshot_tail(&self, out: &mut Vec<u8>);

    /// Reads back what [`Self::snapshot_tail`] wrote.
    #[doc(hidden)]
    fn restore_tail(&mut self, node_count: usize, input: &mut &[u8]) -> Result<(), &'static str>;
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], &'static str> {
    if input.len() < n {
        return Err("truncated");
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

fn take_u64(input: &mut &[u8]) -> Result<u64, &'static str> {
    let head = take(input, 8)?;
    let arr: [u8; 8] = head.try_into().map_err(|_| "truncated")?;
    Ok(u64::from_be_bytes(arr))
}

/// The paper's backend: one stored [`SymmetricKey`] per node.
#[derive(Debug, Clone)]
pub struct ExplicitKeys {
    keys: Vec<SymmetricKey>,
}

impl ExplicitKeys {
    /// Borrowed key of `node` — explicit storage can hand out views
    /// without copying, which the borrow-by-default accessors on
    /// `Tree<ExplicitKeys>` rely on.
    pub(crate) fn key_ref(&self, node: usize) -> &SymmetricKey {
        &self.keys[node]
    }
}

impl KeyStore for ExplicitKeys {
    const SNAPSHOT_MAGIC: &'static [u8; 4] = b"MKT1";
    const BACKEND: crate::tree::TreeBackend = crate::tree::TreeBackend::Explicit;

    fn new_root<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ExplicitKeys {
            keys: vec![SymmetricKey::random(rng)],
        }
    }

    fn on_alloc<R: RngCore + ?Sized>(&mut self, node: usize, _parent: Option<usize>, rng: &mut R) {
        debug_assert_eq!(node, self.keys.len());
        self.keys.push(SymmetricKey::random(rng));
    }

    fn key(&self, node: usize, _version: u64) -> SymmetricKey {
        self.keys[node].clone()
    }

    fn rotate<R: RngCore + ?Sized>(
        &mut self,
        node: usize,
        _old_version: u64,
        _style: RotateStyle,
        rng: &mut R,
    ) -> SymmetricKey {
        let new = SymmetricKey::random(rng);
        std::mem::replace(&mut self.keys[node], new)
    }

    fn resident_key_bytes(&self) -> usize {
        self.keys.len() * SYMMETRIC_KEY_LEN
    }

    fn restore_shell(capacity: usize) -> Self {
        ExplicitKeys {
            keys: Vec::with_capacity(capacity),
        }
    }

    fn snapshot_node(&self, node: usize, out: &mut Vec<u8>) {
        out.extend_from_slice(self.keys[node].as_bytes());
    }

    fn restore_node(
        &mut self,
        node: usize,
        _parent: Option<usize>,
        input: &mut &[u8],
    ) -> Result<(), &'static str> {
        debug_assert_eq!(node, self.keys.len());
        let bytes: [u8; SYMMETRIC_KEY_LEN] = take(input, SYMMETRIC_KEY_LEN)?
            .try_into()
            .map_err(|_| "truncated")?;
        self.keys.push(SymmetricKey::from_bytes(bytes));
        Ok(())
    }

    fn snapshot_tail(&self, _out: &mut Vec<u8>) {}

    fn restore_tail(&mut self, _node_count: usize, _input: &mut &[u8]) -> Result<(), &'static str> {
        Ok(())
    }
}

const FOREST_SECRET_LEN: usize = 32;
const NODE_LABEL: &[u8] = b"mykil-khf-node";
const KEY_LABEL: &[u8] = b"mykil-khf-key";

/// Keyed-hash-forest backend: keys are derived, not stored.
///
/// Resident key material is the forest secret plus one key per
/// override — O(updated set) instead of O(n). See the module docs for
/// the derivation labels.
#[derive(Clone)]
pub struct KhfKeys {
    forest: [u8; FOREST_SECRET_LEN],
    /// Parent arena index per node (mirrors the tree structure so
    /// `secret(n)` can chase the derivation path without a tree ref).
    parent: Vec<Option<usize>>,
    /// Leave-style rotated nodes whose key is independent of the forest.
    overrides: BTreeMap<usize, SymmetricKey>,
}

impl KhfKeys {
    /// The AC-only derivation secret of `node` (never a member-visible
    /// value). Recursion depth is the tree height.
    fn secret(&self, node: usize) -> [u8; 32] {
        match self.parent[node] {
            None => self.forest,
            Some(p) => {
                let parent_secret = self.secret(p);
                let mut label = [0u8; NODE_LABEL.len() + 8];
                label[..NODE_LABEL.len()].copy_from_slice(NODE_LABEL);
                label[NODE_LABEL.len()..].copy_from_slice(&(node as u64).to_be_bytes());
                hmac_sha256(&parent_secret, &label)
            }
        }
    }

    fn derived_key(&self, node: usize, version: u64) -> SymmetricKey {
        let secret = self.secret(node);
        let mut label = [0u8; KEY_LABEL.len() + 8];
        label[..KEY_LABEL.len()].copy_from_slice(KEY_LABEL);
        label[KEY_LABEL.len()..].copy_from_slice(&version.to_be_bytes());
        let tag = hmac_sha256(&secret, &label);
        let mut bytes = [0u8; SYMMETRIC_KEY_LEN];
        bytes.copy_from_slice(&tag[..SYMMETRIC_KEY_LEN]);
        SymmetricKey::from_bytes(bytes)
    }

    /// Number of override entries (test/bench visibility into the
    /// "updated set" the storage bound is expressed in).
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }
}

impl Drop for KhfKeys {
    fn drop(&mut self) {
        mykil_crypto::ct::zeroize(&mut self.forest);
    }
}

impl std::fmt::Debug for KhfKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the forest secret; a fingerprint identifies it.
        let fp = mykil_crypto::sha256::Sha256::digest(&self.forest);
        f.debug_struct("KhfKeys")
            .field("forest", &format_args!("#{:02x}{:02x}{:02x}{:02x}", fp[0], fp[1], fp[2], fp[3]))
            .field("nodes", &self.parent.len())
            .field("overrides", &self.overrides.len())
            .finish()
    }
}

impl KeyStore for KhfKeys {
    const SNAPSHOT_MAGIC: &'static [u8; 4] = b"MKH1";
    const BACKEND: crate::tree::TreeBackend = crate::tree::TreeBackend::Khf;

    fn new_root<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut forest = [0u8; FOREST_SECRET_LEN];
        rng.fill_bytes(&mut forest);
        KhfKeys {
            forest,
            parent: vec![None],
            overrides: BTreeMap::new(),
        }
    }

    fn on_alloc<R: RngCore + ?Sized>(&mut self, node: usize, parent: Option<usize>, _rng: &mut R) {
        debug_assert_eq!(node, self.parent.len());
        self.parent.push(parent);
    }

    fn key(&self, node: usize, version: u64) -> SymmetricKey {
        match self.overrides.get(&node) {
            Some(k) => k.clone(),
            None => self.derived_key(node, version),
        }
    }

    fn rotate<R: RngCore + ?Sized>(
        &mut self,
        node: usize,
        old_version: u64,
        style: RotateStyle,
        rng: &mut R,
    ) -> SymmetricKey {
        let old = self.key(node, old_version);
        match style {
            // The node rejoins the forest: the bumped version derives a
            // fresh-looking key and the override (if any) is dropped.
            RotateStyle::Derivable => {
                self.overrides.remove(&node);
            }
            RotateStyle::Fresh => {
                self.overrides.insert(node, SymmetricKey::random(rng));
            }
        }
        old
    }

    fn resident_key_bytes(&self) -> usize {
        FOREST_SECRET_LEN + self.overrides.len() * SYMMETRIC_KEY_LEN
    }

    fn restore_shell(capacity: usize) -> Self {
        KhfKeys {
            forest: [0u8; FOREST_SECRET_LEN],
            parent: Vec::with_capacity(capacity),
            overrides: BTreeMap::new(),
        }
    }

    fn snapshot_node(&self, _node: usize, _out: &mut Vec<u8>) {}

    fn restore_node(
        &mut self,
        node: usize,
        parent: Option<usize>,
        _input: &mut &[u8],
    ) -> Result<(), &'static str> {
        debug_assert_eq!(node, self.parent.len());
        self.parent.push(parent);
        Ok(())
    }

    fn snapshot_tail(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.forest);
        out.extend_from_slice(&(self.overrides.len() as u64).to_be_bytes());
        for (&node, key) in &self.overrides {
            out.extend_from_slice(&(node as u64).to_be_bytes());
            out.extend_from_slice(key.as_bytes());
        }
    }

    fn restore_tail(&mut self, node_count: usize, input: &mut &[u8]) -> Result<(), &'static str> {
        let forest = take(input, FOREST_SECRET_LEN)?;
        self.forest.copy_from_slice(forest);
        let count = take_u64(input)?;
        if count > node_count as u64 {
            return Err("more overrides than nodes");
        }
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let node = take_u64(input)?;
            if node >= node_count as u64 {
                return Err("override for unknown node");
            }
            // Strictly increasing indices keep the encoding canonical.
            if prev.is_some_and(|p| node <= p) {
                return Err("override order");
            }
            prev = Some(node);
            let bytes: [u8; SYMMETRIC_KEY_LEN] = take(input, SYMMETRIC_KEY_LEN)?
                .try_into()
                .map_err(|_| "truncated")?;
            self.overrides
                .insert(node as usize, SymmetricKey::from_bytes(bytes));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    fn khf_with(nodes: &[Option<usize>]) -> KhfKeys {
        let mut rng = Drbg::from_seed(77);
        let mut store = KhfKeys::new_root(&mut rng);
        for (i, &p) in nodes.iter().enumerate().skip(1) {
            store.on_alloc(i, p, &mut rng);
        }
        store
    }

    #[test]
    fn derivation_is_deterministic_and_separated() {
        let store = khf_with(&[None, Some(0), Some(0), Some(1)]);
        assert_eq!(store.key(3, 0), store.key(3, 0));
        assert_ne!(store.key(3, 0), store.key(3, 1), "version must separate");
        assert_ne!(store.key(1, 0), store.key(2, 0), "node must separate");
        assert_ne!(store.key(0, 0), store.key(1, 0));
    }

    #[test]
    fn derivable_rotation_costs_no_storage() {
        let mut store = khf_with(&[None, Some(0)]);
        let mut rng = Drbg::from_seed(1);
        let base = store.resident_key_bytes();
        let old = store.rotate(1, 0, RotateStyle::Derivable, &mut rng);
        assert_eq!(old, store.derived_key(1, 0));
        assert_ne!(store.key(1, 1), old);
        assert_eq!(store.resident_key_bytes(), base);
    }

    #[test]
    fn fresh_rotation_overrides_then_derivable_reclaims() {
        let mut store = khf_with(&[None, Some(0)]);
        let mut rng = Drbg::from_seed(2);
        let base = store.resident_key_bytes();
        store.rotate(1, 0, RotateStyle::Fresh, &mut rng);
        assert_eq!(store.override_count(), 1);
        assert_eq!(store.resident_key_bytes(), base + SYMMETRIC_KEY_LEN);
        assert_ne!(
            store.key(1, 1),
            store.derived_key(1, 1),
            "override must shadow derivation"
        );
        // A later join-style rotation returns the node to the forest.
        let old = store.rotate(1, 1, RotateStyle::Derivable, &mut rng);
        assert!(old != store.key(1, 2));
        assert_eq!(store.override_count(), 0);
        assert_eq!(store.resident_key_bytes(), base);
        assert_eq!(store.key(1, 2), store.derived_key(1, 2));
    }

    #[test]
    fn debug_hides_forest_secret() {
        let store = khf_with(&[None, Some(0)]);
        let s = format!("{store:?}");
        assert!(s.contains("KhfKeys"));
        for b in store.forest {
            // No raw hex dump of the secret (spot check: the rendered
            // string is short).
            let _ = b;
        }
        assert!(s.len() < 120, "debug output leaks state: {s}");
    }

    #[test]
    fn explicit_store_resident_bytes_are_linear() {
        let mut rng = Drbg::from_seed(3);
        let mut store = ExplicitKeys::new_root(&mut rng);
        for i in 1..10 {
            store.on_alloc(i, Some(0), &mut rng);
        }
        assert_eq!(store.resident_key_bytes(), 10 * SYMMETRIC_KEY_LEN);
    }
}
