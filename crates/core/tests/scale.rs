//! Hybrid hot/cold scale harness tests (ISSUE 7).
//!
//! Small-scale tests drive the full join / mass-leave lifecycle and
//! cross-check every counter by hand; the 100k flash crowd is the CI
//! smoke for the million-member scenario the scale benchmark runs.

use mykil::invariants::check_scale;
use mykil::scale::{ScaleConfig, ScaleGroup};

fn tiny_config() -> ScaleConfig {
    ScaleConfig {
        members: 200,
        areas: 4,
        hot_pool: 8,
        hot_leaves_per_pool: 2,
        cold_batch: 10,
        ..ScaleConfig::paper_million()
    }
}

#[test]
fn flash_crowd_join_reaches_target_membership() {
    let mut g = ScaleGroup::new(tiny_config());
    assert!(g.run_flash_crowd_join(), "join phase ran out of event budget");

    assert_eq!(g.live_members(), 200);
    // Every area got its round-robin share and demoted it to cold.
    for ctrl in g.controllers() {
        assert_eq!(ctrl.joins(), 50);
        assert_eq!(ctrl.cold().cold_members(), 50);
        assert_eq!(ctrl.hot_members(), 0, "hot members left behind after demotion");
    }
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "join-phase violations: {violations:?}");

    // Join rekeys were charged: bytes flowed into the stats ledger.
    assert!(g.sim.stats().counter("scale-rekey-multicast-bytes") > 0);
    assert!(g.sim.stats().counter("scale-rekey-unicast-bytes") > 0);
    assert_eq!(g.sim.stats().counter("scale-joins"), 200);
}

#[test]
fn mass_leave_drains_everyone_and_rotates_epochs() {
    let mut g = ScaleGroup::new(tiny_config());
    assert!(g.run_flash_crowd_join());
    let join_multicast = g.sim.stats().counter("scale-rekey-multicast-bytes");
    assert!(g.run_mass_leave(), "leave phase ran out of event budget");

    assert_eq!(g.live_members(), 0, "members left behind after mass leave");
    let mut hot_leaves = 0;
    let mut cold_leaves = 0;
    for ctrl in g.controllers() {
        hot_leaves += ctrl.hot_leaves();
        cold_leaves += ctrl.cold_leaves();
        assert_eq!(ctrl.hot_members(), 0);
        assert_eq!(ctrl.cold().cold_members(), 0);
        // Forward-secrecy analog: every departure batch rotated the key.
        assert_eq!(ctrl.cold().epoch(), ctrl.cold().leave_batches());
        assert!(ctrl.cold().epoch() > ctrl.hot_leaves());
    }
    // 8 pool nodes x 2 hot leaves each; the rest drained cold.
    assert_eq!(hot_leaves, 16);
    assert_eq!(cold_leaves, 200 - 16);
    assert_eq!(g.sim.stats().counter("scale-hot-leaves"), 16);
    assert_eq!(g.sim.stats().counter("scale-cold-leaves"), 200 - 16);
    // Leave rekeys added multicast bytes on top of the join phase.
    assert!(g.sim.stats().counter("scale-rekey-multicast-bytes") > join_multicast);

    let violations = check_scale(&g);
    assert!(violations.is_empty(), "leave-phase violations: {violations:?}");
}

#[test]
fn scale_run_is_deterministic() {
    let run = || {
        let mut g = ScaleGroup::new(tiny_config());
        g.run_flash_crowd_join();
        g.run_mass_leave();
        (
            g.sim.events_processed(),
            g.sim.now(),
            g.sim.stats().counter("scale-rekey-multicast-bytes"),
            g.sim.stats().counter("scale-rekey-unicast-bytes"),
        )
    };
    assert_eq!(run(), run(), "identical configs must replay identically");
}

#[test]
fn ledger_drift_is_detected() {
    let mut g = ScaleGroup::new(tiny_config());
    assert!(g.run_flash_crowd_join());
    // Corrupt one ledger: the stats counter drifts from the replay.
    g.sim.stats_mut().bump("scale-rekey-multicast-bytes", 1);
    let violations = check_scale(&g);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            mykil::invariants::InvariantViolation::ScaleLedgerDrift {
                counter: "scale-rekey-multicast-bytes",
                ..
            }
        )),
        "corrupted ledger not flagged: {violations:?}"
    );
}

/// The CI smoke for the acceptance scenario: 100,000 members across
/// 100 areas join as a flash crowd and then all leave, with the
/// invariant checker auditing both quiescent points.
#[test]
fn flash_crowd_100k_smoke() {
    let mut g = ScaleGroup::new(ScaleConfig::smoke_100k());
    assert!(g.run_flash_crowd_join(), "100k join ran out of event budget");
    assert_eq!(g.live_members(), 100_000);
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "100k join violations: {violations:?}");

    assert!(g.run_mass_leave(), "100k leave ran out of event budget");
    assert_eq!(g.live_members(), 0);
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "100k leave violations: {violations:?}");
}
