//! The Iolus baseline (Mittra, SIGCOMM'97): a flat subgroup with a
//! pairwise secret per member.
//!
//! On a leave, the subgroup controller picks a fresh subgroup key and
//! re-encrypts it *separately under every remaining member's pairwise
//! key* — the `area_size · 16` bytes that dominate Figure 8. On a join
//! it multicasts the fresh key under the old one and unicasts the
//! newcomer its two keys.
//!
//! One `IolusGroup` models one subgroup; the multi-subgroup deployment
//! of the paper's comparison is a collection of these (see
//! `mykil-bench`), since Iolus rekeying never crosses subgroups.

use crate::traffic::RekeyTraffic;
use crate::KeyManager;
use mykil_crypto::keys::SymmetricKey;
use mykil_tree::MemberId;
use rand::RngCore;
use std::collections::BTreeMap;

/// One Iolus subgroup (the paper's "area" analogue).
#[derive(Debug, Clone)]
pub struct IolusGroup {
    key_len: u64,
    subgroup_key: SymmetricKey,
    /// Pairwise secret per member (what the GSC stores).
    pairwise: BTreeMap<MemberId, SymmetricKey>,
}

impl IolusGroup {
    /// Creates an empty subgroup with the given key length in bytes
    /// (the paper uses 16).
    pub fn new(key_len: u64) -> IolusGroup {
        IolusGroup {
            key_len,
            subgroup_key: SymmetricKey::from_label("iolus-initial"),
            pairwise: BTreeMap::new(),
        }
    }

    /// The current subgroup key.
    pub fn subgroup_key(&self) -> SymmetricKey {
        self.subgroup_key.clone()
    }

    /// Whether a member is present.
    pub fn contains(&self, member: MemberId) -> bool {
        self.pairwise.contains_key(&member)
    }
}

impl KeyManager for IolusGroup {
    fn join(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        self.pairwise.insert(member, SymmetricKey::random(rng));
        self.subgroup_key = SymmetricKey::random(rng);
        RekeyTraffic {
            // E_old(new) to current members.
            multicast_bytes: self.key_len,
            multicast_messages: 1,
            // Pairwise secret + subgroup key to the newcomer.
            unicast_bytes: 2 * self.key_len,
            unicast_messages: 1,
        }
    }

    fn leave(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        if self.pairwise.remove(&member).is_none() {
            return RekeyTraffic::default();
        }
        self.subgroup_key = SymmetricKey::random(rng);
        let m = self.pairwise.len() as u64;
        RekeyTraffic {
            multicast_bytes: 0,
            multicast_messages: 0,
            // New subgroup key re-encrypted per remaining member.
            unicast_bytes: m * self.key_len,
            unicast_messages: m,
        }
    }

    fn batch_leave(&mut self, members: &[MemberId], rng: &mut dyn RngCore) -> RekeyTraffic {
        // Iolus can aggregate trivially: remove everyone, rekey once.
        let mut removed = 0u64;
        for &m in members {
            if self.pairwise.remove(&m).is_some() {
                removed += 1;
            }
        }
        if removed == 0 {
            return RekeyTraffic::default();
        }
        self.subgroup_key = SymmetricKey::random(rng);
        let m = self.pairwise.len() as u64;
        RekeyTraffic {
            multicast_bytes: 0,
            multicast_messages: 0,
            unicast_bytes: m * self.key_len,
            unicast_messages: m,
        }
    }

    fn member_count(&self) -> usize {
        self.pairwise.len()
    }

    fn member_storage_bytes(&self) -> u64 {
        // Subgroup key + pairwise secret (the paper's 32 B).
        2 * self.key_len
    }

    fn controller_storage_bytes(&self) -> u64 {
        // One pairwise key per member plus the subgroup key.
        (self.pairwise.len() as u64 + 1) * self.key_len
    }

    fn name(&self) -> &'static str {
        "iolus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    #[test]
    fn leave_costs_one_key_per_remaining_member() {
        let mut rng = Drbg::from_seed(1);
        let mut g = IolusGroup::new(16);
        crate::populate(&mut g, 5000, &mut rng);
        let t = g.leave(MemberId(17), &mut rng);
        // The paper's 80,000-byte figure: ~5000 members × 16 B.
        assert_eq!(t.total_key_bytes(), 4999 * 16);
        assert_eq!(t.unicast_messages, 4999);
    }

    #[test]
    fn join_is_cheap() {
        let mut rng = Drbg::from_seed(2);
        let mut g = IolusGroup::new(16);
        crate::populate(&mut g, 100, &mut rng);
        let t = g.join(MemberId(1000), &mut rng);
        assert_eq!(t.multicast_bytes, 16);
        assert_eq!(t.unicast_bytes, 32);
    }

    #[test]
    fn keys_rotate_on_membership_change() {
        let mut rng = Drbg::from_seed(3);
        let mut g = IolusGroup::new(16);
        let k0 = g.subgroup_key();
        g.join(MemberId(1), &mut rng);
        let k1 = g.subgroup_key();
        assert_ne!(k0, k1);
        g.leave(MemberId(1), &mut rng);
        assert_ne!(g.subgroup_key(), k1);
    }

    #[test]
    fn unknown_member_leave_is_free() {
        let mut rng = Drbg::from_seed(4);
        let mut g = IolusGroup::new(16);
        crate::populate(&mut g, 10, &mut rng);
        let key = g.subgroup_key();
        assert_eq!(g.leave(MemberId(99), &mut rng), RekeyTraffic::default());
        assert_eq!(g.subgroup_key(), key, "no spurious rekey");
    }

    #[test]
    fn batch_leave_rekeys_once() {
        let mut rng = Drbg::from_seed(5);
        let mut g = IolusGroup::new(16);
        crate::populate(&mut g, 100, &mut rng);
        let t = g.batch_leave(&[MemberId(1), MemberId(2), MemberId(3)], &mut rng);
        assert_eq!(t.unicast_messages, 97);
        assert_eq!(g.member_count(), 97);
    }

    #[test]
    fn storage_matches_paper() {
        let mut rng = Drbg::from_seed(6);
        let mut g = IolusGroup::new(16);
        crate::populate(&mut g, 5000, &mut rng);
        assert_eq!(g.member_storage_bytes(), 32);
        assert_eq!(g.controller_storage_bytes(), 5001 * 16); // ~80 KB
    }
}
