//! Key-update wire format and the member-side key store.
//!
//! An area controller turns a [`RekeyPlan`] into a list of
//! [`WireKeyEntry`]s — one per encrypted key copy, each a sealed
//! envelope of the new key under the protecting key — and multicasts
//! them in a signed [`Msg::KeyUpdate`](crate::msg::Msg). Members feed
//! the entries to their [`KeyState`], which learns exactly the keys it
//! can decrypt — the executable form of the paper's Figure 5/6
//! semantics.
//!
//! The hot path avoids materializing [`WireKeyEntry`] values at all:
//! [`write_entries_from_plan`] seals each envelope straight into the
//! outgoing frame and [`KeyState::apply_encoded`] opens entries straight
//! out of the received frame. The entry structs remain for tests,
//! diagnostics, and callers that need random access.

use crate::error::ProtocolError;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope;
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::{CryptoError, SYMMETRIC_KEY_LEN};
use mykil_tree::{EncryptUnder, NodeIdx, RekeyPlan};
use rand::RngCore;
use std::collections::BTreeMap;

/// Which stored key a receiver should try for an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnderTag {
    /// The previous key of the same node (join-style update).
    PrevSelf,
    /// The key of the given child node (leave-style update).
    Child(u32),
}

/// One encrypted key copy inside a key-update multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireKeyEntry {
    /// The tree node whose key changed.
    pub node: u32,
    /// Hint for which stored key decrypts this entry.
    pub under: UnderTag,
    /// `seal(protecting_key, new_key_bytes)`.
    pub env: Vec<u8>,
}

/// Wire length of one sealed key envelope: a 16-byte key plus the
/// fixed envelope overhead (44 bytes total).
pub const KEY_ENV_LEN: usize = SYMMETRIC_KEY_LEN + envelope::ENVELOPE_OVERHEAD;

fn tag_wire_len(under: &EncryptUnder) -> usize {
    match under {
        EncryptUnder::PreviousSelf => 1,
        EncryptUnder::Child(_) => 1 + 4,
    }
}

/// Exact encoded size of a plan's key-update body — what
/// [`write_entries_from_plan`] will emit. Used to pre-size frames.
pub fn entries_wire_len(plan: &RekeyPlan) -> usize {
    let mut total = 4; // entry count
    for change in &plan.changes {
        for (under, _) in &change.encryptions {
            total += 4 + tag_wire_len(under) + 4 + KEY_ENV_LEN;
        }
    }
    total
}

/// Serializes a plan's key updates directly into `w`, sealing each
/// envelope in place — no intermediate [`WireKeyEntry`] list and no
/// per-envelope allocation.
///
/// Byte-identical to `encode_entries(&entries_from_plan(plan, rng))`
/// (same RNG consumption order), minus that pair's intermediate
/// allocations.
pub fn write_entries_from_plan<R: RngCore + ?Sized>(
    plan: &RekeyPlan,
    rng: &mut R,
    w: &mut Writer,
) {
    w.reserve(entries_wire_len(plan));
    w.u32_from(plan.encryption_count());
    write_plan_entries(plan, rng, w);
}

/// The entry bodies of [`write_entries_from_plan`] without the leading
/// count — for callers assembling one frame from several sources (the
/// flush path mixes aggregated join entries with a leave plan's).
pub fn write_plan_entries<R: RngCore + ?Sized>(plan: &RekeyPlan, rng: &mut R, w: &mut Writer) {
    for change in &plan.changes {
        for (under, key) in &change.encryptions {
            w.u32(change.node.wire());
            match under {
                EncryptUnder::PreviousSelf => {
                    w.u8(0);
                }
                EncryptUnder::Child(c) => {
                    w.u8(1).u32(c.wire());
                }
            }
            w.u32_from(KEY_ENV_LEN);
            w.append_with(|buf| envelope::seal_into(key, change.new_key.as_bytes(), rng, buf));
        }
    }
}

/// Builds wire entries from a rekey plan (sealing each new key under
/// each protecting key). Prefer [`write_entries_from_plan`] on hot
/// paths — it skips the per-entry envelope allocations.
pub fn entries_from_plan<R: RngCore + ?Sized>(plan: &RekeyPlan, rng: &mut R) -> Vec<WireKeyEntry> {
    let mut out = Vec::with_capacity(plan.encryption_count());
    for change in &plan.changes {
        for (under, key) in &change.encryptions {
            let tag = match under {
                EncryptUnder::PreviousSelf => UnderTag::PrevSelf,
                EncryptUnder::Child(c) => UnderTag::Child(c.wire()),
            };
            out.push(WireKeyEntry {
                node: change.node.wire(),
                under: tag,
                env: envelope::seal(key, change.new_key.as_bytes(), rng),
            });
        }
    }
    out
}

/// Serializes entries into a key-update body.
pub fn encode_entries(entries: &[WireKeyEntry]) -> Vec<u8> {
    let total: usize = 4
        + entries
            .iter()
            .map(|e| {
                let tag = match e.under {
                    UnderTag::PrevSelf => 1,
                    UnderTag::Child(_) => 5,
                };
                4 + tag + 4 + e.env.len()
            })
            .sum::<usize>();
    let mut w = Writer::with_capacity(total);
    w.u32_from(entries.len());
    for e in entries {
        w.u32(e.node);
        match e.under {
            UnderTag::PrevSelf => {
                w.u8(0);
            }
            UnderTag::Child(c) => {
                w.u8(1).u32(c);
            }
        }
        w.bytes(&e.env);
    }
    w.into_bytes()
}

/// Parses a key-update body.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on truncation or bad tags.
pub fn decode_entries(bytes: &[u8]) -> Result<Vec<WireKeyEntry>, ProtocolError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    if count > 1 << 20 {
        return Err(ProtocolError::Malformed("entry count"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let (node, under, env) = decode_one_entry(&mut r)?;
        out.push(WireKeyEntry {
            node,
            under,
            env: env.to_vec(),
        });
    }
    r.finish()?;
    Ok(out)
}

fn decode_one_entry<'a>(r: &mut Reader<'a>) -> Result<(u32, UnderTag, &'a [u8]), ProtocolError> {
    let node = r.u32()?;
    let under = match r.u8()? {
        0 => UnderTag::PrevSelf,
        1 => UnderTag::Child(r.u32()?),
        _ => return Err(ProtocolError::Malformed("under tag")),
    };
    Ok((node, under, r.bytes()?))
}

/// Serializes a unicast key path (`(node, key)` pairs, leaf first).
pub fn encode_path(path: &[(u32, SymmetricKey)]) -> Vec<u8> {
    let mut w = Writer::with_capacity(4 + path.len() * (4 + SYMMETRIC_KEY_LEN));
    w.u32_from(path.len());
    for (node, key) in path {
        w.u32(*node).raw(key.as_bytes());
    }
    w.into_bytes()
}

/// [`encode_path`] straight from a tree plan's `(NodeIdx, key)` form,
/// skipping the intermediate converted `Vec` the call sites used to
/// build. Byte-identical to converting and calling [`encode_path`].
pub fn encode_tree_path(path: &[(NodeIdx, SymmetricKey)]) -> Vec<u8> {
    let mut w = Writer::with_capacity(4 + path.len() * (4 + SYMMETRIC_KEY_LEN));
    w.u32_from(path.len());
    for (node, key) in path {
        w.u32(node.wire()).raw(key.as_bytes());
    }
    w.into_bytes()
}

/// Parses a unicast key path.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on truncation.
pub fn decode_path(bytes: &[u8]) -> Result<Vec<(u32, SymmetricKey)>, ProtocolError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    if count > 1 << 16 {
        return Err(ProtocolError::Malformed("path length"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let node = r.u32()?;
        let key: [u8; 16] = r.array()?;
        out.push((node, SymmetricKey::from_bytes(key)));
    }
    r.finish()?;
    Ok(out)
}

/// The tree node index of the area key (the root is always node 0).
pub const AREA_KEY_NODE: u32 = 0;

/// Result of applying a key-update multicast to a [`KeyState`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Entries successfully decrypted and installed.
    pub learned: usize,
    /// Entries whose protecting key we hold a *stale* copy of —
    /// evidence that an earlier update was missed.
    pub stale: usize,
    /// Entries whose envelope cannot be a key envelope at all (wrong
    /// length for a 16-byte plaintext). Previously these were silently
    /// dropped; a count makes a corrupt or hostile sender visible.
    pub malformed: usize,
}

/// How many superseded area keys are retained for late-arriving data.
///
/// A key update and a data packet multicast back-to-back can be
/// reordered by network jitter; the paper's TCP transport hid this, the
/// simulator does not. Retaining a few previous area keys lets
/// receivers unwrap `K_r` from data sealed just before a rotation.
pub const AREA_KEY_HISTORY: usize = 8;

/// A member's (or downstream AC's) current view of one area's keys.
#[derive(Debug, Clone, Default)]
pub struct KeyState {
    keys: BTreeMap<u32, SymmetricKey>,
    previous_roots: std::collections::VecDeque<SymmetricKey>,
}

impl KeyState {
    /// An empty key store.
    pub fn new() -> KeyState {
        KeyState::default()
    }

    /// Installs a unicast key path (join step 7 / rejoin step 6).
    pub fn install_path(&mut self, path: &[(u32, SymmetricKey)]) {
        for (node, key) in path {
            if *node == AREA_KEY_NODE {
                self.note_root_change(key.clone());
            }
            self.keys.insert(*node, key.clone());
        }
    }

    /// [`Self::install_path`] straight from a tree plan's
    /// `(NodeIdx, key)` form.
    pub fn install_tree_path(&mut self, path: &[(NodeIdx, SymmetricKey)]) {
        for (node, key) in path {
            let node = node.wire();
            if node == AREA_KEY_NODE {
                self.note_root_change(key.clone());
            }
            self.keys.insert(node, key.clone());
        }
    }

    fn note_root_change(&mut self, new: SymmetricKey) {
        if let Some(old) = self.keys.get(&AREA_KEY_NODE) {
            if *old != new {
                self.previous_roots.push_front(old.clone());
                self.previous_roots.truncate(AREA_KEY_HISTORY);
            }
        }
    }

    /// Applies one entry. Classification:
    ///
    /// - protecting key not held → ignored (not our subtree);
    /// - envelope length ≠ [`KEY_ENV_LEN`] → `malformed` (cannot be a
    ///   key envelope under *any* key);
    /// - MAC rejects → `stale` (our copy of the protecting key is out
    ///   of date);
    /// - opens → `learned`.
    fn apply_one(&mut self, node: u32, under: UnderTag, env: &[u8], outcome: &mut ApplyOutcome) {
        let trial = match under {
            UnderTag::PrevSelf => self.keys.get(&node),
            UnderTag::Child(c) => self.keys.get(&c),
        };
        let Some(trial) = trial else { return };
        match envelope::open_fixed::<SYMMETRIC_KEY_LEN>(trial, env) {
            Ok(raw) => {
                let new = SymmetricKey::from_bytes(raw);
                if node == AREA_KEY_NODE {
                    self.note_root_change(new.clone());
                }
                self.keys.insert(node, new);
                outcome.learned += 1;
            }
            Err(CryptoError::EnvelopeError(_)) => outcome.malformed += 1,
            Err(_) => outcome.stale += 1,
        }
    }

    /// Applies a key-update multicast: for each entry, if the protecting
    /// key is held, the envelope opens and the new key is stored.
    pub fn apply_entries(&mut self, entries: &[WireKeyEntry]) -> ApplyOutcome {
        let mut outcome = ApplyOutcome::default();
        for e in entries {
            self.apply_one(e.node, e.under, &e.env, &mut outcome);
        }
        outcome
    }

    /// Applies an encoded key-update body directly, without building a
    /// `Vec<WireKeyEntry>` first — envelopes are opened in place from
    /// the frame. Equivalent to `apply_entries(&decode_entries(bytes)?)`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation or bad tags; the
    /// key store may have absorbed earlier entries of a frame that
    /// fails late (same keys a re-sent valid frame would install).
    pub fn apply_encoded(&mut self, bytes: &[u8]) -> Result<ApplyOutcome, ProtocolError> {
        let mut r = Reader::new(bytes);
        let count = r.u32()? as usize;
        if count > 1 << 20 {
            return Err(ProtocolError::Malformed("entry count"));
        }
        let mut outcome = ApplyOutcome::default();
        for _ in 0..count {
            let (node, under, env) = decode_one_entry(&mut r)?;
            self.apply_one(node, under, env, &mut outcome);
        }
        r.finish()?;
        Ok(outcome)
    }

    /// The current area key, if known.
    pub fn area_key(&self) -> Option<SymmetricKey> {
        self.keys.get(&AREA_KEY_NODE).cloned()
    }

    /// The current area key followed by recently superseded ones
    /// (newest first) — the set a receiver tries when unwrapping data.
    pub fn area_keys_with_history(&self) -> Vec<SymmetricKey> {
        let mut out = Vec::with_capacity(1 + self.previous_roots.len());
        out.extend(self.area_key());
        out.extend(self.previous_roots.iter().cloned());
        out
    }

    /// Number of keys held (the storage metric of Section V-A).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Removes everything (member left the area).
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// Serializes the key store (used by AC replication). Streams the
    /// [`encode_path`] format directly from the map — no intermediate
    /// cloned path.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(4 + self.keys.len() * (4 + SYMMETRIC_KEY_LEN));
        w.u32_from(self.keys.len());
        for (node, key) in &self.keys {
            w.u32(*node).raw(key.as_bytes());
        }
        w.into_bytes()
    }

    /// Restores a key store serialized by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<KeyState, ProtocolError> {
        let mut st = KeyState::new();
        st.install_path(&decode_path(bytes)?);
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;
    use mykil_tree::{KeyTree, MemberId, TreeConfig};

    #[test]
    fn entries_round_trip() {
        let mut rng = Drbg::from_seed(1);
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        for m in 0..8 {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let plan = tree.leave(MemberId(3), &mut rng).unwrap();
        let entries = entries_from_plan(&plan, &mut rng);
        assert_eq!(entries.len(), plan.encryption_count());
        let bytes = encode_entries(&entries);
        assert_eq!(decode_entries(&bytes).unwrap(), entries);
        assert!(decode_entries(&bytes[..bytes.len() - 1]).is_err());
    }

    /// The streaming encoder must produce the exact bytes of the
    /// build-then-encode pair, including RNG consumption order.
    #[test]
    fn streaming_encoder_matches_two_step() {
        let mut rng = Drbg::from_seed(9);
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut rng);
        for m in 0..20 {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let plan = tree
            .batch(&[MemberId(100)], &[MemberId(3), MemberId(7)], &mut rng)
            .unwrap()
            .plan;

        let mut rng_a = Drbg::from_seed(77);
        let two_step = encode_entries(&entries_from_plan(&plan, &mut rng_a));

        let mut rng_b = Drbg::from_seed(77);
        let mut w = Writer::new();
        write_entries_from_plan(&plan, &mut rng_b, &mut w);
        let streamed = w.into_bytes();

        assert_eq!(streamed, two_step);
        assert_eq!(streamed.len(), entries_wire_len(&plan));
    }

    #[test]
    fn apply_encoded_matches_apply_entries() {
        let mut rng = Drbg::from_seed(10);
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        let mut st_a = KeyState::new();
        for m in 0..8 {
            let plan = tree.join(MemberId(m), &mut rng).unwrap();
            if let Some(u) = plan.unicasts.iter().find(|u| u.member == MemberId(0)) {
                st_a.install_tree_path(&u.keys);
            }
            let entries = entries_from_plan(&plan, &mut rng);
            st_a.apply_entries(&entries);
        }
        let mut st_b = st_a.clone();

        let plan = tree.leave(MemberId(5), &mut rng).unwrap();
        let mut w = Writer::new();
        write_entries_from_plan(&plan, &mut rng, &mut w);
        let bytes = w.into_bytes();

        let out_a = st_a.apply_entries(&decode_entries(&bytes).unwrap());
        let out_b = st_b.apply_encoded(&bytes).unwrap();
        assert_eq!(out_a, out_b);
        assert!(out_b.learned > 0);
        assert_eq!(st_a.area_key(), st_b.area_key());
        assert_eq!(st_a.key_count(), st_b.key_count());

        assert!(st_b.apply_encoded(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn path_round_trip() {
        let path = vec![
            (5u32, SymmetricKey::from_label("a")),
            (2, SymmetricKey::from_label("b")),
            (0, SymmetricKey::from_label("c")),
        ];
        let bytes = encode_path(&path);
        assert_eq!(decode_path(&bytes).unwrap(), path);
        assert!(decode_path(&bytes[..7]).is_err());
    }

    /// Full distribution flow over real envelopes: members track the
    /// area key through joins and leaves; departed members cannot.
    #[test]
    fn keystate_tracks_area_key_through_churn() {
        let mut rng = Drbg::from_seed(2);
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut rng);
        let mut states: BTreeMap<u64, KeyState> = BTreeMap::new();

        for m in 0..12u64 {
            let plan = tree.join(MemberId(m), &mut rng).unwrap();
            let entries = entries_from_plan(&plan, &mut rng);
            for st in states.values_mut() {
                st.apply_entries(&entries);
            }
            for u in &plan.unicasts {
                states
                    .entry(u.member.0)
                    .or_default()
                    .install_tree_path(&u.keys);
            }
        }
        for st in states.values() {
            assert_eq!(st.area_key().as_ref(), Some(tree.area_key()));
        }

        // One member leaves; the rest keep up, the departed one stalls.
        let plan = tree.leave(MemberId(4), &mut rng).unwrap();
        let entries = entries_from_plan(&plan, &mut rng);
        let mut departed = states.remove(&4).unwrap();
        assert_eq!(departed.apply_entries(&entries).learned, 0);
        assert_ne!(departed.area_key().as_ref(), Some(tree.area_key()));
        for (m, st) in states.iter_mut() {
            st.apply_entries(&entries);
            assert_eq!(st.area_key().as_ref(), Some(tree.area_key()), "member {m}");
        }
    }

    #[test]
    fn garbage_envelope_counted_malformed() {
        let mut st = KeyState::new();
        st.install_path(&[(0, SymmetricKey::from_label("root"))]);
        // 50 bytes can never hold a 16-byte key plaintext.
        let outcome = st.apply_entries(&[WireKeyEntry {
            node: 0,
            under: UnderTag::PrevSelf,
            env: vec![0u8; 50],
        }]);
        assert_eq!(outcome.learned, 0);
        assert_eq!(outcome.malformed, 1, "wrong-length envelope must be counted");
        assert_eq!(outcome.stale, 0);
        assert_eq!(st.area_key(), Some(SymmetricKey::from_label("root")));
    }

    /// Regression: a correctly MAC'd envelope whose plaintext is not 16
    /// bytes used to be dropped with no trace; it must now be counted
    /// as malformed. A right-length envelope failing its MAC stays
    /// classed as stale.
    #[test]
    fn wrong_plaintext_length_is_malformed_not_silent() {
        let mut rng = Drbg::from_seed(3);
        let root = SymmetricKey::from_label("root");
        let mut st = KeyState::new();
        st.install_path(&[(0, root.clone())]);

        // Valid envelope under the held key, but 17-byte plaintext.
        let outcome = st.apply_entries(&[WireKeyEntry {
            node: 0,
            under: UnderTag::PrevSelf,
            env: envelope::seal(&root, &[0x42; 17], &mut rng),
        }]);
        assert_eq!(
            outcome,
            ApplyOutcome {
                learned: 0,
                stale: 0,
                malformed: 1
            }
        );

        // Right length, wrong key: stale, not malformed.
        let other = SymmetricKey::from_label("other");
        let outcome = st.apply_entries(&[WireKeyEntry {
            node: 0,
            under: UnderTag::PrevSelf,
            env: envelope::seal(&other, &[0x42; 16], &mut rng),
        }]);
        assert_eq!(
            outcome,
            ApplyOutcome {
                learned: 0,
                stale: 1,
                malformed: 0
            }
        );
        assert_eq!(st.area_key(), Some(root));
    }

    #[test]
    fn clear_and_counters() {
        let mut st = KeyState::new();
        assert_eq!(st.key_count(), 0);
        assert_eq!(st.area_key(), None);
        st.install_path(&[(0, SymmetricKey::from_label("x")), (3, SymmetricKey::from_label("y"))]);
        assert_eq!(st.key_count(), 2);
        st.clear();
        assert_eq!(st.key_count(), 0);
    }

    #[test]
    fn keystate_to_bytes_round_trip() {
        let mut st = KeyState::new();
        st.install_path(&[
            (0, SymmetricKey::from_label("r")),
            (3, SymmetricKey::from_label("s")),
            (9, SymmetricKey::from_label("t")),
        ]);
        let bytes = st.to_bytes();
        let back = KeyState::from_bytes(&bytes).unwrap();
        assert_eq!(back.key_count(), 3);
        assert_eq!(back.area_key(), st.area_key());
        assert_eq!(back.to_bytes(), bytes);
    }
}
