//! Section V-E: the hand-held-device feasibility test.
//!
//! The paper encrypted a 16 MB file with RC4 on a 600 MHz Celeron in
//! ~0.32 s (≈50 MB/s) and concluded hand-held devices keep up with
//! multimedia bit-rates. This bench reproduces the measurement (plus a
//! ChaCha20 comparison as the modern-cipher ablation).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mykil_crypto::chacha::ChaCha20;
use mykil_crypto::rc4::Rc4;

const SIZE: usize = 16 << 20; // the paper's 16 MB file

fn bench_data_ciphers(c: &mut Criterion) {
    let mut g = c.benchmark_group("ve_handheld");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(SIZE as u64));

    g.bench_function("rc4_16mb", |b| {
        let mut buf = vec![0x5au8; SIZE];
        b.iter(|| {
            Rc4::new(b"handheld-key-128").apply_keystream(&mut buf);
            std::hint::black_box(buf[0])
        });
    });

    g.bench_function("chacha20_16mb", |b| {
        let mut buf = vec![0x5au8; SIZE];
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        b.iter(|| {
            ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
            std::hint::black_box(buf[0])
        });
    });

    g.finish();
}

criterion_group!(benches, bench_data_ciphers);
criterion_main!(benches);
