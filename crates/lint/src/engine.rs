//! The rule engine: runs every rule over a scanned file, honoring
//! `#[cfg(test)]` / `#[test]` regions and suppression directives.
//!
//! Suppression syntax:
//!
//! ```text
//! risky_call(); // mykil-lint: allow(L001) -- proven unreachable: …
//!
//! // mykil-lint: allow(L003)
//! if mac_a != mac_b { … }      // directive on its own line covers the
//!                              // next code line
//! ```
//!
//! Several rules may be listed: `allow(L001, L005)`.

use crate::ast::{self, Ast};
use crate::diagnostics::{display_path, Diagnostic};
use crate::rules::{Check, FileContext, RULES};
use crate::tokenizer::{scan, Comment, Token};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

/// One file after the full analysis pipeline: tokens, test mask, and
/// the syntax layer. This is what crate-scoped (AST) rules consume.
pub struct AnalyzedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments (for suppression directives).
    pub comments: Vec<Comment>,
    /// Per-token flag: inside `#[cfg(test)]` / `#[test]` code.
    pub test_mask: Vec<bool>,
    /// The syntax layer: functions, events, typed declarations.
    pub ast: Ast,
}

/// Everything a crate-scoped rule sees: all analyzed files of one
/// workspace crate (files outside `crates/<name>/src/` form singleton
/// groups with `crate_name == None`).
pub struct CrateContext<'a> {
    /// The `crates/<name>/src/` crate these files belong to, if any.
    pub crate_name: Option<&'a str>,
    /// Every analyzed file in the crate, in path order.
    pub files: &'a [&'a AnalyzedFile],
}

/// The `crates/<name>/src/` crate a workspace-relative path belongs to.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// Runs the analysis pipeline on one file.
pub fn analyze(rel_path: &str, source: &str) -> AnalyzedFile {
    let scanned = scan(source);
    let test_mask = compute_test_mask(&scanned.tokens);
    let parsed = ast::parse(&scanned.tokens);
    AnalyzedFile {
        path: rel_path.to_string(),
        tokens: scanned.tokens,
        comments: scanned.comments,
        test_mask,
        ast: parsed,
    }
}

/// Lints a set of files as one unit: token rules run per file, AST
/// rules run once per crate group (so cross-file facts — a field's
/// declared type, a timer's handling site — are visible). Suppression
/// directives are honored for both rule kinds.
pub fn lint_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    let analyzed: Vec<AnalyzedFile> = files
        .iter()
        .map(|(path, source)| analyze(path, source))
        .collect();
    let mut out = Vec::new();
    for f in &analyzed {
        let ctx = FileContext {
            path: &f.path,
            tokens: &f.tokens,
            test_mask: &f.test_mask,
        };
        for rule in RULES {
            if let Check::Token(check) = rule.check {
                out.extend(check(&ctx));
            }
        }
    }
    // Group files by crate for the AST rules. Files outside a crate's
    // src/ tree group by their own path (singleton, crate_name = None).
    let mut groups: BTreeMap<&str, Vec<&AnalyzedFile>> = BTreeMap::new();
    for f in &analyzed {
        groups
            .entry(crate_of(&f.path).unwrap_or(f.path.as_str()))
            .or_default()
            .push(f);
    }
    for group in groups.values() {
        let cctx = CrateContext {
            crate_name: crate_of(&group[0].path),
            files: group,
        };
        for rule in RULES {
            if let Check::Crate(check) = rule.check {
                out.extend(check(&cctx));
            }
        }
    }
    let suppressed: HashMap<&str, HashMap<u32, Vec<String>>> = analyzed
        .iter()
        .map(|f| (f.path.as_str(), suppression_map(&f.tokens, &f.comments)))
        .collect();
    out.retain(|d| {
        !suppressed
            .get(d.file.as_str())
            .and_then(|m| m.get(&d.line))
            .is_some_and(|rules| rules.iter().any(|r| r == d.rule))
    });
    out.sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    out
}

/// Lints one file's source text. `rel_path` must be workspace-relative
/// with forward slashes — rule scoping keys off it. Crate-scoped rules
/// see only this file; use [`lint_files`] / [`lint_workspace`] for
/// cross-file analysis.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    lint_files(&[(rel_path.to_string(), source.to_string())])
}

/// Marks every token that lives inside `#[cfg(test)]` or `#[test]`
/// code, so rules about production hygiene stay quiet in tests.
pub fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(attr_end) = test_attribute_end(tokens, i) else {
            i += 1;
            continue;
        };
        // The attribute governs the next item. Only mark if a block
        // opens before any top-level `;` (so `#[cfg(test)] mod t;`
        // does not swallow unrelated code).
        let mut j = attr_end;
        let mut pdepth = 0i32;
        let block_start = loop {
            let Some(tok) = tokens.get(j) else { break None };
            if tok.is_punct('(') || tok.is_punct('[') {
                pdepth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                pdepth -= 1;
            } else if tok.is_punct('{') && pdepth == 0 {
                break Some(j);
            } else if tok.is_punct(';') && pdepth == 0 {
                break None;
            }
            j += 1;
        };
        if let Some(start) = block_start {
            let mut depth = 1i32;
            let mut k = start + 1;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            for flag in &mut mask[i..k] {
                *flag = true;
            }
        }
        i = attr_end;
    }
    mask
}

/// If a `#[test]`-like attribute starts at `i`, returns the index just
/// past its closing `]`. Recognizes `#[test]`, `#[cfg(test)]`, and any
/// `#[cfg(…test…)]` combination such as `#[cfg(all(test, unix))]`.
fn test_attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let head = tokens.get(i + 2)?;
    let mut is_test_attr = head.is_ident("test");
    let mut j = i + 2;
    let mut depth = 1i32; // the `[`
    while j < tokens.len() && depth > 0 {
        let tok = &tokens[j];
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
        } else if head.is_ident("cfg") && tok.is_ident("test") {
            is_test_attr = true;
        }
        j += 1;
    }
    is_test_attr.then_some(j)
}

/// Builds `line -> allowed rule ids` from suppression comments. A
/// trailing comment covers its own line; a comment on its own line
/// covers the next line that has code.
fn suppression_map(tokens: &[Token], comments: &[Comment]) -> HashMap<u32, Vec<String>> {
    let mut map: HashMap<u32, Vec<String>> = HashMap::new();
    for comment in comments {
        let Some(rules) = parse_directive(comment) else {
            continue;
        };
        let target = if comment.has_code_before {
            comment.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|l| *l > comment.line)
                .unwrap_or(comment.line)
        };
        map.entry(target).or_default().extend(rules);
    }
    map
}

/// Parses `mykil-lint: allow(L001, L003) [-- reason]` from a comment.
fn parse_directive(comment: &Comment) -> Option<Vec<String>> {
    let text = comment.text.trim();
    let rest = text.strip_prefix("mykil-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (list, _) = rest.split_once(')')?;
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

/// Recursively collects the `.rs` files the workspace linter covers:
/// everything under `crates/` except `target/` and the linter's own
/// fixture directories.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace file under `root`, returning diagnostics with
/// workspace-relative paths. All files are analyzed as one batch so
/// crate-scoped rules see whole crates.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for path in workspace_files(root)? {
        let source = std::fs::read_to_string(&path)?;
        files.push((display_path(&path, root), source));
    }
    Ok(lint_files(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let scanned = scan(src);
        let mask = compute_test_mask(&scanned.tokens);
        let unwrap_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        let prod_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("prod"))
            .unwrap();
        assert!(mask[unwrap_idx]);
        assert!(!mask[prod_idx]);
    }

    #[test]
    fn cfg_test_path_declaration_marks_nothing_else() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { x.unwrap(); }\n";
        let scanned = scan(src);
        let mask = compute_test_mask(&scanned.tokens);
        let unwrap_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(!mask[unwrap_idx]);
    }

    #[test]
    fn test_fn_attribute_masks_its_body() {
        let src = "#[test]\nfn check() { y.expect(\"ok\"); }\nfn prod() {}\n";
        let scanned = scan(src);
        let mask = compute_test_mask(&scanned.tokens);
        let expect_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("expect"))
            .unwrap();
        let prod_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("prod"))
            .unwrap();
        assert!(mask[expect_idx]);
        assert!(!mask[prod_idx]);
    }

    #[test]
    fn same_line_suppression() {
        let src = "fn f() { x.unwrap(); // mykil-lint: allow(L001) -- startup only\n}";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn standalone_suppression_covers_next_line() {
        let src = "fn f() {\n // mykil-lint: allow(L001)\n x.unwrap();\n}";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn suppression_for_other_rule_does_not_apply() {
        let src = "fn f() { x.unwrap(); // mykil-lint: allow(L003)\n}";
        let diags = lint_source("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "L001");
    }

    #[test]
    fn multi_rule_directive() {
        let src = "fn f() { x.unwrap(); // mykil-lint: allow(L003, L001)\n}";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }
}
