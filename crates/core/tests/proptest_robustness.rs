//! Fuzz-style robustness: arbitrary bytes delivered to any protocol
//! node must never panic, corrupt membership, or leak admission.
//!
//! This is the property behind every `Malformed` error path: the codec
//! layer ([`mykil::wire`]) fails closed, and the nodes ignore what they
//! cannot parse or verify.

use mykil::area::AreaController;
use mykil::group::GroupBuilder;
use mykil::member::Member;
use mykil::registration::RegistrationServer;
use mykil_net::{Node, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn garbage_never_panics_or_corrupts(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            1..12,
        ),
        target_sel in proptest::collection::vec(0u8..3, 1..12),
    ) {
        let mut g = GroupBuilder::new(4242).areas(1).build();
        let m = g.register_member(1);
        g.settle();
        prop_assert!(g.is_member(m));
        let key_before = g.member(m).current_area_key();
        let members_before = g.ac(0).member_count();

        let rs = NodeId::from_index(0);
        let ac = g.primaries[0];
        for (payload, sel) in payloads.iter().zip(&target_sel) {
            let bytes = payload.clone();
            let from = m;
            match sel % 3 {
                0 => g.sim.invoke(rs, |r: &mut RegistrationServer, ctx| {
                    r.on_message(ctx, from, &bytes);
                }),
                1 => g.sim.invoke(ac, |a: &mut AreaController, ctx| {
                    a.on_message(ctx, from, &bytes);
                }),
                _ => {
                    let from_ac = ac;
                    g.sim.invoke(m, |mm: &mut Member, ctx| {
                        mm.on_message(ctx, from_ac, &bytes);
                    });
                }
            }
        }
        g.run_for(mykil_net::Duration::from_secs(2));

        // Nothing changed: no phantom members, no key rollback, the
        // legitimate member still in good standing.
        prop_assert!(g.is_member(m));
        prop_assert_eq!(g.ac(0).member_count(), members_before);
        let key_after = g.member(m).current_area_key();
        prop_assert!(key_after.is_some());
        // Key may have rotated for legitimate reasons (timers), but the
        // member must still agree with its controller.
        prop_assert_eq!(key_after, Some(g.ac(0).area_key()));
        let _ = key_before;
    }

    #[test]
    fn truncated_real_messages_never_panic(
        cut in 1usize..60,
    ) {
        // Take a real join-step-1 message and truncate it at an
        // arbitrary point; the RS must reject it gracefully.
        let mut g = GroupBuilder::new(4243).areas(1).build();
        let m = g.register_member_manual(1);
        let rs = NodeId::from_index(0);
        // Build a real Join1 by letting the member start, capturing the
        // wire bytes indirectly: simpler — send a truncated synthetic
        // message of the right tag.
        let mut bytes = vec![1u8]; // Join1 tag
        bytes.extend_from_slice(&(1000u32).to_be_bytes()); // lying length
        bytes.extend_from_slice(&vec![0xaa; cut]);
        g.sim.invoke(m, |_mm: &mut Member, ctx| {
            ctx.send(rs, "join", bytes.clone());
        });
        g.run_for(mykil_net::Duration::from_secs(1));
        prop_assert_eq!(g.ac(0).member_count(), 0);
    }
}
