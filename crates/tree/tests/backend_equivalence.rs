//! Backend equivalence: the explicit tree and the keyed-hash forest
//! must be *protocol-indistinguishable*. Key values necessarily differ
//! (each backend draws/derives its own), so equivalence means:
//!
//! - identical tree shape and member placement for the same schedule,
//! - identical plan structure — changed nodes, encryption provenance
//!   ([`EncryptUnder`]), and unicast recipients/node lists — i.e. the
//!   same wire-message sizes and the same readable-by sets,
//! - identical member-visible verdicts: every present member's view
//!   converges to its path, departed members learn nothing,
//! - both backends pass `check_invariants` at every step.

use mykil_crypto::drbg::Drbg;
use mykil_tree::{EncryptUnder, KeyStore, MemberId, MemberView, RekeyPlan, Tree, TreeConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Join(u8),
    LeaveNth(u8),
    Batch { joins: u8, leave_picks: Vec<u8> },
    RotateArea,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..5).prop_map(Op::Join),
        (0u8..255).prop_map(Op::LeaveNth),
        ((0u8..4), proptest::collection::vec(0u8..255, 0..4))
            .prop_map(|(joins, leave_picks)| Op::Batch { joins, leave_picks }),
        Just(Op::RotateArea),
    ]
}

/// Everything member-visible about a plan except the key bytes.
type PlanShape = (
    Vec<(usize, Vec<EncryptUnder>)>,
    Vec<(MemberId, Vec<usize>)>,
);

fn shape(plan: &RekeyPlan) -> PlanShape {
    (
        plan.changes
            .iter()
            .map(|c| {
                (
                    c.node.raw(),
                    c.encryptions.iter().map(|(under, _)| *under).collect(),
                )
            })
            .collect(),
        plan.unicasts
            .iter()
            .map(|u| (u.member, u.keys.iter().map(|(n, _)| n.raw()).collect()))
            .collect(),
    )
}

/// One backend's protocol state: the tree plus live per-member views,
/// updated exactly as the real distribution flow would.
struct Side<S: KeyStore> {
    tree: Tree<S>,
    views: BTreeMap<MemberId, MemberView>,
    rng: Drbg,
}

impl<S: KeyStore> Side<S> {
    fn new(cfg: TreeConfig, seed: u64) -> Self {
        let mut rng = Drbg::from_seed(seed);
        Side {
            tree: Tree::<S>::new(cfg, &mut rng),
            views: BTreeMap::new(),
            rng,
        }
    }

    fn distribute(&mut self, plan: &RekeyPlan) {
        for v in self.views.values_mut() {
            v.apply_plan(plan);
        }
        for u in &plan.unicasts {
            self.views
                .entry(u.member)
                .or_insert_with(|| MemberView::new(u.member))
                .apply_unicast(u);
        }
    }

    /// Asserts the per-backend member-visible verdicts: departed views
    /// learn nothing, surviving views match the tree's paths.
    fn check_converged(&self) {
        self.tree.check_invariants();
        let mut path = Vec::new();
        for m in self.tree.members() {
            let v = &self.views[&m];
            self.tree.path_keys_into(m, &mut path).unwrap();
            for (node, key) in path.drain(..) {
                assert_eq!(v.key(node), Some(key), "{m} stale at {node}");
            }
        }
    }
}

fn run_equivalence(arity: usize, seed: u64, ops: &[Op]) {
    let cfg = TreeConfig::with_arity(arity);
    // Different RNG streams on purpose: equivalence must not depend on
    // the backends drawing the same bytes.
    let mut e: Side<mykil_tree::ExplicitKeys> = Side::new(cfg, seed);
    let mut k: Side<mykil_tree::KhfKeys> = Side::new(cfg, seed ^ 0x5eed_cafe);
    let mut next_member = 0u64;

    for op in ops {
        match op {
            Op::Join(n) => {
                for _ in 0..*n {
                    let m = MemberId(next_member);
                    next_member += 1;
                    let pe = e.tree.join(m, &mut e.rng).unwrap();
                    let pk = k.tree.join(m, &mut k.rng).unwrap();
                    assert_eq!(shape(&pe), shape(&pk), "join({m}) plans diverge");
                    e.distribute(&pe);
                    k.distribute(&pk);
                }
            }
            Op::LeaveNth(n) => {
                let members: Vec<MemberId> = e.tree.members().collect();
                if members.is_empty() {
                    continue;
                }
                let victim = members[*n as usize % members.len()];
                let pe = e.tree.leave(victim, &mut e.rng).unwrap();
                let pk = k.tree.leave(victim, &mut k.rng).unwrap();
                assert_eq!(shape(&pe), shape(&pk), "leave({victim}) plans diverge");
                // Forward secrecy verdict must agree on both backends.
                let mut gone_e = e.views.remove(&victim).unwrap();
                let mut gone_k = k.views.remove(&victim).unwrap();
                assert_eq!(gone_e.apply_plan(&pe), 0, "explicit forward secrecy");
                assert_eq!(gone_k.apply_plan(&pk), 0, "khf forward secrecy");
                e.distribute(&pe);
                k.distribute(&pk);
            }
            Op::Batch { joins, leave_picks } => {
                let members: Vec<MemberId> = e.tree.members().collect();
                let mut leavers: Vec<MemberId> = if members.is_empty() {
                    Vec::new()
                } else {
                    leave_picks
                        .iter()
                        .map(|p| members[*p as usize % members.len()])
                        .collect()
                };
                leavers.sort_unstable();
                leavers.dedup();
                let joiners: Vec<MemberId> = (0..*joins)
                    .map(|_| {
                        let m = MemberId(next_member);
                        next_member += 1;
                        m
                    })
                    .collect();
                let oe = e.tree.batch(&joiners, &leavers, &mut e.rng).unwrap();
                let ok = k.tree.batch(&joiners, &leavers, &mut k.rng).unwrap();
                assert_eq!(shape(&oe.plan), shape(&ok.plan), "batch plans diverge");
                for v in &leavers {
                    let mut gone_e = e.views.remove(v).unwrap();
                    let mut gone_k = k.views.remove(v).unwrap();
                    assert_eq!(gone_e.apply_plan(&oe.plan), 0);
                    assert_eq!(gone_k.apply_plan(&ok.plan), 0);
                }
                e.distribute(&oe.plan);
                k.distribute(&ok.plan);
            }
            Op::RotateArea => {
                let pe = e.tree.rotate_area_key(&mut e.rng);
                let pk = k.tree.rotate_area_key(&mut k.rng);
                assert_eq!(shape(&pe), shape(&pk), "area rotation plans diverge");
                e.distribute(&pe);
                k.distribute(&pk);
            }
        }

        // Structure equivalence after every operation.
        assert_eq!(e.tree.node_count(), k.tree.node_count());
        assert_eq!(e.tree.member_count(), k.tree.member_count());
        assert_eq!(e.tree.height(), k.tree.height());
        let me: Vec<MemberId> = e.tree.members().collect();
        let mk: Vec<MemberId> = k.tree.members().collect();
        assert_eq!(me, mk, "membership diverged");
        for m in &me {
            assert_eq!(e.tree.leaf_of(*m).unwrap(), k.tree.leaf_of(*m).unwrap());
        }
        for i in 0..e.tree.node_count() {
            let n = mykil_tree::NodeIdx::from_raw(i);
            assert_eq!(e.tree.version_of(n), k.tree.version_of(n), "{n} version");
        }
        e.check_converged();
        k.check_converged();
    }

    // The forest's whole point: resident key material stays bounded by
    // the override set instead of the node count.
    if e.tree.node_count() > 1 {
        assert!(
            k.tree.resident_key_bytes() <= e.tree.resident_key_bytes() + 32,
            "khf resident {} explicit {}",
            k.tree.resident_key_bytes(),
            e.tree.resident_key_bytes()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn backends_are_protocol_equivalent_quad(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_equivalence(4, seed, &ops);
    }

    #[test]
    fn backends_are_protocol_equivalent_binary(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        run_equivalence(2, seed, &ops);
    }

    /// Snapshot round-trips preserve every per-node version counter on
    /// both backends, and re-snapshotting is byte-identical (the
    /// canonical-form property the fuzz oracle relies on).
    #[test]
    fn snapshot_round_trip_preserves_versions(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        fn check<S: KeyStore>(tree: &Tree<S>) {
            let snap = tree.snapshot();
            let restored = Tree::<S>::restore(&snap).unwrap();
            restored.check_invariants();
            for i in 0..tree.node_count() {
                let n = mykil_tree::NodeIdx::from_raw(i);
                prop_assert_eq_impl(restored.version_of(n), tree.version_of(n));
                prop_assert_eq_impl(
                    restored.node_key(n).as_bytes().to_vec(),
                    tree.node_key(n).as_bytes().to_vec(),
                );
            }
            assert_eq!(restored.snapshot(), snap, "re-snapshot not canonical");
        }
        fn prop_assert_eq_impl<T: PartialEq + std::fmt::Debug>(a: T, b: T) {
            assert_eq!(a, b);
        }

        let cfg = TreeConfig::quad();
        let mut e: Side<mykil_tree::ExplicitKeys> = Side::new(cfg, seed);
        let mut k: Side<mykil_tree::KhfKeys> = Side::new(cfg, seed ^ 1);
        let mut next = 0u64;
        for op in &ops {
            match op {
                Op::Join(n) => {
                    for _ in 0..*n {
                        e.tree.join(MemberId(next), &mut e.rng).unwrap();
                        k.tree.join(MemberId(next), &mut k.rng).unwrap();
                        next += 1;
                    }
                }
                Op::LeaveNth(n) => {
                    let members: Vec<MemberId> = e.tree.members().collect();
                    if let Some(&victim) = members.get(*n as usize % members.len().max(1)) {
                        e.tree.leave(victim, &mut e.rng).unwrap();
                        k.tree.leave(victim, &mut k.rng).unwrap();
                    }
                }
                Op::Batch { .. } | Op::RotateArea => {
                    e.tree.rotate_area_key(&mut e.rng);
                    k.tree.rotate_area_key(&mut k.rng);
                }
            }
        }
        check(&e.tree);
        check(&k.tree);
    }
}
