//! Multiplication for [`BigUint`]: schoolbook core with a dedicated
//! squaring path (squaring dominates modular exponentiation).

use super::BigUint;
use std::ops::Mul;

impl BigUint {
    /// Schoolbook multiplication into a fresh limb vector.
    pub(crate) fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            let a = a as u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Squares the value; same asymptotics as schoolbook multiply but with
    /// roughly half the limb products.
    pub fn square(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let n = self.limbs.len();
        let mut out = vec![0u32; 2 * n];
        // Off-diagonal products, each counted once then doubled.
        for i in 0..n {
            let a = self.limbs[i] as u64;
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            for j in (i + 1)..n {
                let t = a * self.limbs[j] as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + n;
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        // Double the off-diagonal sum.
        let mut carry = 0u64;
        for limb in out.iter_mut() {
            let t = ((*limb as u64) << 1) | carry;
            *limb = t as u32;
            carry = t >> 32;
        }
        debug_assert_eq!(carry, 0, "doubling cannot overflow 2n limbs");
        // Add the diagonal squares.
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs[i] as u64;
            let sq = a * a;
            let lo = i * 2;
            let t = out[lo] as u64 + (sq as u32 as u64) + carry;
            out[lo] = t as u32;
            carry = t >> 32;
            let t = out[lo + 1] as u64 + (sq >> 32) + carry;
            out[lo + 1] = t as u32;
            carry = t >> 32;
        }
        let mut k = 2 * n;
        while carry != 0 {
            // Can only spill if n*32-bit square overflows, which it cannot
            // past 2n limbs; keep the loop for safety in debug builds.
            out.push(0);
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> 32;
            k += 1;
        }
        BigUint::from_limbs(out)
    }

    /// Multiplies by a single `u32` limb.
    pub fn mul_u32(&self, m: u32) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let t = l as u64 * m as u64 + carry;
            out.push(t as u32);
            carry = t >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs(out)
    }
}

impl Mul for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_dispatch(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;

    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_dispatch(&rhs)
    }
}

impl Mul<&BigUint> for BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_dispatch(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        let a = BigUint::from(123_456_789_u64);
        let b = BigUint::from(987_654_321_u64);
        assert_eq!((&a * &b).to_u64(), Some(123_456_789 * 987_654_321));
    }

    #[test]
    fn zero_and_one_identities() {
        let a = BigUint::from(0xfeed_f00d_u64);
        assert!((&a * &BigUint::zero()).is_zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn cross_limb_product() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = BigUint::from(u64::MAX);
        let sq = &a * &a;
        assert_eq!(sq, a.square());
        assert_eq!(sq.to_string(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn square_matches_mul_on_many_widths() {
        let mut x = BigUint::from(3_u64);
        for _ in 0..20 {
            x = &x * &BigUint::from(0x1_0000_0001_u64);
            x.add_u32_assign(0x9e37_79b9);
            assert_eq!(x.square(), &x * &x);
        }
    }

    #[test]
    fn mul_u32_matches_full_mul() {
        let a = BigUint::from_bytes_be(&[0xff; 12]);
        assert_eq!(a.mul_u32(0), BigUint::zero());
        assert_eq!(a.mul_u32(1), a);
        assert_eq!(a.mul_u32(0xdead), &a * &BigUint::from(0xdead_u32));
    }

    #[test]
    fn multiplication_commutes() {
        let a = BigUint::from_bytes_be(b"\x12\x34\x56\x78\x9a\xbc\xde\xf0\x01\x02");
        let b = BigUint::from_bytes_be(b"\xff\xee\xdd\xcc\xbb");
        assert_eq!(&a * &b, &b * &a);
    }
}
