//! Ablation: auxiliary-key-tree arity.
//!
//! The paper asserts (after Wong/Gouda/Lam) that four children per node
//! "provides the best overall performance". This ablation measures
//! leave-rekey bytes and wall-clock cost at arity 2, 4 and 8 so the
//! claim can be checked against this implementation; the byte values
//! per arity are printed by the `report` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mykil_crypto::drbg::Drbg;
use mykil_tree::{KeyTree, MemberId, TreeConfig};

const AREA: u64 = 5_000;

fn bench_arity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_arity_leave");
    for arity in [2usize, 4, 8] {
        let mut rng = Drbg::from_seed(arity as u64);
        let mut tree = KeyTree::new(TreeConfig::with_arity(arity), &mut rng);
        for m in 0..AREA {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("leave", arity), &arity, |b, _| {
            let mut next = AREA;
            b.iter(|| {
                let m = MemberId(next);
                next += 1;
                tree.join(m, &mut rng).unwrap();
                let plan = tree.leave(m, &mut rng).unwrap();
                std::hint::black_box(plan.multicast_bytes())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_arity);
criterion_main!(benches);
