//! Fixture tests for the syntax-aware rules L006–L010: every rule must
//! fire on a violating snippet, stay quiet on clean and suppressed
//! variants, and honor its file/crate scope. Cross-file cases go
//! through [`mykil_lint::lint_files`], which is how the real workspace
//! run batches a crate.

use mykil_lint::engine::crate_of;
use mykil_lint::rules::FileContext;
use mykil_lint::{lint_files, lint_source};

fn rules_at(path: &str, src: &str) -> Vec<(String, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

fn rule_ids(path: &str, src: &str) -> Vec<String> {
    rules_at(path, src).into_iter().map(|(r, _)| r).collect()
}

/// Like [`rule_ids`] but filtered to one rule — the AST fixtures often
/// use snippets that also trip unrelated token rules.
fn hits(rule: &str, path: &str, src: &str) -> Vec<u32> {
    rules_at(path, src)
        .into_iter()
        .filter(|(r, _)| r == rule)
        .map(|(_, l)| l)
        .collect()
}

// ---------------------------------------------------------------- L006

#[test]
fn l006_fires_on_hash_iteration_methods() {
    for method in ["iter()", "iter_mut()", "keys()", "values()", "values_mut()", "drain()"] {
        let src = format!(
            "use std::collections::HashMap;\nstruct S {{ members: HashMap<u64, u32> }}\n\
             impl S {{ fn f(&mut self) {{ for x in self.members.{method} {{ use_it(x); }} }} }}\n"
        );
        for krate in ["core", "net", "tree"] {
            let path = format!("crates/{krate}/src/a.rs");
            assert_eq!(hits("L006", &path, &src), vec![3], "{krate}/{method}");
        }
    }
}

#[test]
fn l006_fires_on_for_loop_over_hash_field() {
    let src = "use std::collections::HashSet;\nstruct S { seen: HashSet<u64> }\n\
               impl S { fn f(&self) {\n for id in &self.seen { emit(id); }\n } }\n";
    assert_eq!(hits("L006", "crates/net/src/a.rs", src), vec![4]);
}

#[test]
fn l006_fires_on_local_hash_binding() {
    let src = "fn f() {\n let pending: std::collections::HashMap<u64, u32> = build();\n\
               for (k, v) in pending.iter() { emit(k, v); }\n}\n";
    assert_eq!(hits("L006", "crates/core/src/a.rs", src), vec![3]);
}

#[test]
fn l006_quiet_on_btree_collections() {
    let src = "use std::collections::BTreeMap;\nstruct S { members: BTreeMap<u64, u32> }\n\
               impl S { fn f(&self) { for x in self.members.keys() { emit(x); } } }\n";
    assert!(hits("L006", "crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l006_quiet_on_sorted_collect_in_same_statement() {
    let src = "struct S { m: std::collections::HashMap<u64, u32> }\nimpl S {\n\
               fn f(&self) {\n let ks: std::collections::BTreeSet<u64> = \
               self.m.keys().copied().collect();\n emit(&ks);\n }\n}\n";
    assert!(hits("L006", "crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l006_quiet_on_non_iterating_methods() {
    let src = "struct S { m: std::collections::HashMap<u64, u32> }\nimpl S {\n\
               fn f(&mut self) { self.m.insert(1, 2); let _ = self.m.get(&1); \
               let _ = self.m.len(); }\n}\n";
    assert!(hits("L006", "crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l006_quiet_outside_deterministic_crates() {
    let src = "struct S { m: std::collections::HashMap<u64, u32> }\n\
               impl S { fn f(&self) { for x in self.m.keys() { emit(x); } } }\n";
    assert!(hits("L006", "crates/crypto/src/a.rs", src).is_empty());
    assert!(hits("L006", "crates/baselines/src/a.rs", src).is_empty());
    assert!(hits("L006", "src/lib.rs", src).is_empty());
}

#[test]
fn l006_quiet_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n struct S { m: std::collections::HashMap<u64, u32> }\n\
               impl S { fn f(&self) { for x in self.m.keys() { emit(x); } } }\n}\n";
    assert!(hits("L006", "crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l006_suppressed_with_directive() {
    let src = "struct S { m: std::collections::HashMap<u64, u32> }\nimpl S {\n fn f(&self) {\n\
               // mykil-lint: allow(L006) -- order folded through a commutative sum\n\
               for x in self.m.values() { total += x; }\n }\n}\n";
    assert!(hits("L006", "crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l006_sees_declarations_across_files_in_one_crate() {
    // The field is declared in mod.rs; the iteration lives in another
    // file of the same crate. Only the batched (crate-level) analysis
    // can connect them.
    let decl = "pub struct Area { pub members: std::collections::HashMap<u64, u32> }\n";
    let usage = "fn snapshot(a: &Area) {\n for m in a.members.keys() { emit(m); }\n}\n";
    let diags = lint_files(&[
        ("crates/core/src/area/mod.rs".to_string(), decl.to_string()),
        ("crates/core/src/area/persist.rs".to_string(), usage.to_string()),
    ]);
    let l006: Vec<_> = diags.iter().filter(|d| d.rule == "L006").collect();
    assert_eq!(l006.len(), 1);
    assert_eq!(l006[0].file, "crates/core/src/area/persist.rs");
    assert_eq!(l006[0].line, 2);

    // The same usage file alone cannot know the field's type.
    assert!(hits("L006", "crates/core/src/area/persist.rs", usage).is_empty());

    // And the files land in different crates -> no connection either.
    let diags = lint_files(&[
        ("crates/core/src/area/mod.rs".to_string(), decl.to_string()),
        ("crates/net/src/sim.rs".to_string(), usage.to_string()),
    ]);
    assert!(diags.iter().all(|d| d.rule != "L006"));
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_fires_on_ack_sent_before_wal_commit() {
    let src = "impl Ac {\n fn handle(&mut self, ctx: &mut Ctx) {\n\
               ctx.send(peer, Msg::HeartbeatAck { seq });\n\
               self.wal_commit_record(ctx, &rec);\n }\n}\n";
    assert_eq!(hits("L007", "crates/core/src/area/liveness.rs", src), vec![3]);
}

#[test]
fn l007_fires_through_let_binding() {
    let src = "fn handle(ctx: &mut Ctx) {\n let reply = Msg::RejoinDenied { why };\n\
               ctx.send_reliable(peer, reply);\n ctx.storage().wal_commit(bytes);\n}\n";
    assert_eq!(hits("L007", "crates/core/src/registration.rs", src), vec![3]);
}

#[test]
fn l007_quiet_when_wal_precedes_ack() {
    let src = "fn handle(ctx: &mut Ctx) {\n ctx.storage().wal_commit(bytes);\n\
               ctx.send(peer, Msg::AreaJoinAck { area });\n}\n";
    assert!(hits("L007", "crates/core/src/area/liveness.rs", src).is_empty());
}

#[test]
fn l007_quiet_on_non_ack_send_before_wal() {
    // Key-delivery unicasts before the commit are part of the protocol
    // (join step 7); only acks/replies are ordering-sensitive.
    let src = "fn admit(ctx: &mut Ctx) {\n ctx.send(peer, Msg::KeyUpdate { body });\n\
               self.wal_commit_record(ctx, &rec);\n}\n";
    assert!(hits("L007", "crates/core/src/area/join.rs", src).is_empty());
}

#[test]
fn l007_quiet_when_function_has_no_wal_call() {
    // Deny paths and pure-read handlers mutate nothing durable; the
    // intra-procedural rule only constrains functions that commit.
    let src = "fn deny(ctx: &mut Ctx) { ctx.send(peer, Msg::RejoinDenied { why }); }\n";
    assert!(hits("L007", "crates/core/src/area/rejoin.rs", src).is_empty());
}

#[test]
fn l007_quiet_outside_core() {
    let src = "fn handle(ctx: &mut Ctx) {\n ctx.send(peer, Msg::HeartbeatAck { seq });\n\
               self.wal_commit_record(ctx, &rec);\n}\n";
    assert!(hits("L007", "crates/net/src/sim.rs", src).is_empty());
    assert!(hits("L007", "crates/tree/src/plan.rs", src).is_empty());
}

#[test]
fn l007_quiet_in_harness_and_tests() {
    let src = "fn check(ctx: &mut Ctx) {\n ctx.send(peer, Msg::HeartbeatAck { seq });\n\
               self.wal_commit_record(ctx, &rec);\n}\n";
    assert!(hits("L007", "crates/core/src/invariants.rs", src).is_empty());
    let in_test = format!("#[cfg(test)]\nmod tests {{\n{src}\n}}\n");
    assert!(hits("L007", "crates/core/src/area/liveness.rs", &in_test).is_empty());
}

#[test]
fn l007_suppressed_with_directive() {
    let src = "fn handle(ctx: &mut Ctx) {\n\
               // mykil-lint: allow(L007) -- ack covers the previous record, committed upstream\n\
               ctx.send(peer, Msg::HeartbeatAck { seq });\n\
               self.wal_commit_record(ctx, &rec);\n}\n";
    assert!(hits("L007", "crates/core/src/area/liveness.rs", src).is_empty());
}

// ---------------------------------------------------------------- L008

#[test]
fn l008_fires_on_bare_literal_timer_tag() {
    let src = "fn f(ctx: &mut Ctx) { ctx.set_timer(delay, 42); }\n";
    assert_eq!(hits("L008", "crates/core/src/member.rs", src), vec![1]);
    assert_eq!(hits("L008", "crates/net/src/sim.rs", src), vec![1]);
}

#[test]
fn l008_fires_on_armed_kind_nobody_handles() {
    let src = "const TIMER_GHOST: u64 = 9;\n\
               fn f(ctx: &mut Ctx) { ctx.set_timer(delay, TIMER_GHOST); }\n";
    assert_eq!(hits("L008", "crates/core/src/member.rs", src), vec![2]);
}

#[test]
fn l008_quiet_when_kind_is_matched_in_same_file() {
    let src = "const TIMER_SWEEP: u64 = 3;\n\
               fn arm(ctx: &mut Ctx) { ctx.set_timer(delay, TIMER_SWEEP); }\n\
               fn on_timer(tag: u64) { match tag { TIMER_SWEEP => sweep(), _ => () } }\n";
    assert!(hits("L008", "crates/core/src/member.rs", src).is_empty());
}

#[test]
fn l008_quiet_when_kind_is_cancelled() {
    let src = "const TIMER_RETRY: u64 = 4;\n\
               fn arm(ctx: &mut Ctx) { ctx.set_timer(delay, TIMER_RETRY); }\n\
               fn stop(ctx: &mut Ctx) { ctx.cancel_timer_kind(TIMER_RETRY); }\n";
    assert!(hits("L008", "crates/core/src/member.rs", src).is_empty());
}

#[test]
fn l008_handling_site_may_live_in_another_file_of_the_crate() {
    let arm = "pub const TIMER_HEARTBEAT: u64 = 2;\n\
               pub fn arm(ctx: &mut Ctx) { ctx.set_timer(delay, TIMER_HEARTBEAT); }\n";
    let handle = "use crate::area::TIMER_HEARTBEAT;\n\
                  fn on_timer(tag: u64) { match tag { TIMER_HEARTBEAT => beat(), _ => () } }\n";
    let both = lint_files(&[
        ("crates/core/src/area/mod.rs".to_string(), arm.to_string()),
        ("crates/core/src/area/liveness.rs".to_string(), handle.to_string()),
    ]);
    assert!(both.iter().all(|d| d.rule != "L008"), "{both:?}");

    // The arm file alone has no handling site (the `use` import in the
    // other file must not count as one either way).
    assert_eq!(
        hits("L008", "crates/core/src/area/mod.rs", arm),
        vec![2],
        "arm site alone must fire"
    );
}

#[test]
fn l008_use_import_is_not_a_handling_site() {
    let arm = "pub const TIMER_LOST: u64 = 7;\n\
               pub fn arm(ctx: &mut Ctx) { ctx.set_timer(delay, TIMER_LOST); }\n";
    let import_only = "use crate::area::TIMER_LOST;\nfn unrelated() {}\n";
    let diags = lint_files(&[
        ("crates/core/src/area/mod.rs".to_string(), arm.to_string()),
        ("crates/core/src/area/liveness.rs".to_string(), import_only.to_string()),
    ]);
    assert_eq!(
        diags.iter().filter(|d| d.rule == "L008").count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn l008_quiet_outside_timer_crates_and_in_tests() {
    let src = "fn f(ctx: &mut Ctx) { ctx.set_timer(delay, 42); }\n";
    assert!(hits("L008", "crates/tree/src/plan.rs", src).is_empty());
    assert!(hits("L008", "crates/crypto/src/rsa.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n fn f(ctx: &mut Ctx) { ctx.set_timer(d, 42); }\n}\n";
    assert!(hits("L008", "crates/net/src/sim.rs", in_test).is_empty());
}

#[test]
fn l008_suppressed_with_directive() {
    let src = "fn f(ctx: &mut Ctx) {\n\
               // mykil-lint: allow(L008) -- one-shot scramble timer, fires into generic drain\n\
               ctx.set_timer(delay, 42);\n}\n";
    assert!(hits("L008", "crates/net/src/sim.rs", src).is_empty());
}

// ---------------------------------------------------------------- L009

#[test]
fn l009_fires_on_narrowing_casts_in_wire_files() {
    for target in ["u8", "u16", "u32", "i8", "i16", "i32"] {
        let src = format!("fn enc(w: &mut Writer, n: usize) {{ w.u32(n as {target}); }}\n");
        assert_eq!(
            hits("L009", "crates/core/src/wire.rs", &src),
            vec![1],
            "{target}"
        );
    }
}

#[test]
fn l009_applies_to_every_wire_sensitive_file() {
    let src = "fn enc(n: usize) -> u32 { n as u32 }\n";
    for path in [
        "crates/core/src/wire.rs",
        "crates/core/src/msg.rs",
        "crates/core/src/rekey.rs",
        "crates/core/src/durable.rs",
        "crates/core/src/welcome.rs",
        "crates/core/src/ticket.rs",
        "crates/crypto/src/envelope.rs",
        // Storage parses whatever a crashed disk left behind, and the
        // fuzz harness frames arbitrary mutated bytes: both are
        // hostile-input surfaces.
        "crates/net/src/chaos.rs",
        "crates/net/src/storage.rs",
        "crates/net/src/file_store.rs",
        "crates/fuzz/src/engine.rs",
        "crates/fuzz/src/targets.rs",
    ] {
        assert_eq!(hits("L009", path, src), vec![1], "{path}");
    }
}

#[test]
fn l009_quiet_on_widening_casts() {
    let src = "fn dec(r: &mut Reader) { let n = r.u32()? as usize; let m = x as u64; }\n";
    assert!(hits("L009", "crates/core/src/wire.rs", src).is_empty());
}

#[test]
fn l009_quiet_outside_wire_files_and_in_tests() {
    let src = "fn enc(n: usize) -> u32 { n as u32 }\n";
    assert!(hits("L009", "crates/core/src/area/mod.rs", src).is_empty());
    assert!(hits("L009", "crates/net/src/sim.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n fn enc(n: usize) -> u32 { n as u32 }\n}\n";
    assert!(hits("L009", "crates/core/src/wire.rs", in_test).is_empty());
}

#[test]
fn l009_quiet_on_use_renames() {
    let src = "use crate::error::ProtocolError as u32_like_name;\nfn f() {}\n";
    assert!(hits("L009", "crates/core/src/wire.rs", src).is_empty());
}

#[test]
fn l009_suppressed_with_directive() {
    let src = "fn enc(n: usize) -> u32 {\n\
               // mykil-lint: allow(L009) -- n is a 4-bit tag by construction\n\
               n as u32\n}\n";
    assert!(hits("L009", "crates/core/src/wire.rs", src).is_empty());
}

// ---------------------------------------------------------------- L010

#[test]
fn l010_fires_on_indexing_and_panicking_slice_calls() {
    let src = "fn dec(bytes: &[u8]) {\n let a = bytes[0];\n let b = &bytes[..4];\n\
               let (h, t) = bytes.split_at(4);\n dst.copy_from_slice(h);\n}\n";
    assert_eq!(
        hits("L010", "crates/core/src/wire.rs", src),
        vec![2, 3, 4, 5]
    );
}

#[test]
fn l010_fires_on_index_after_try_operator() {
    // Regression for the detection gap that let `take(1)?[0]` through.
    let src = "fn dec(r: &mut Reader) -> Result<u8, E> { Ok(r.take(1)?[0]) }\n";
    assert_eq!(hits("L010", "crates/core/src/wire.rs", src), vec![1]);
}

#[test]
fn l010_quiet_on_checked_access() {
    let src = "fn dec(bytes: &[u8]) -> Option<()> {\n let a = bytes.get(0)?;\n\
               let (h, t) = bytes.split_at_checked(4)?;\n\
               let arr: [u8; 4] = h.try_into().ok()?;\n Some(())\n}\n";
    assert!(hits("L010", "crates/core/src/wire.rs", src).is_empty());
}

#[test]
fn l010_quiet_on_array_literals_and_macros() {
    let src = "fn f() { let a = [0u8; 4]; let v = vec![1, 2]; let s = &a; }\n";
    assert!(hits("L010", "crates/core/src/wire.rs", src).is_empty());
}

#[test]
fn l010_quiet_outside_wire_files_and_in_tests() {
    let src = "fn dec(bytes: &[u8]) -> u8 { bytes[0] }\n";
    assert!(hits("L010", "crates/core/src/area/mod.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n fn t(b: &[u8]) -> u8 { b[0] }\n}\n";
    assert!(hits("L010", "crates/core/src/wire.rs", in_test).is_empty());
}

#[test]
fn l010_suppressed_with_directive() {
    let src = "fn f(out: &mut Vec<u8>, start: usize) {\n\
               // mykil-lint: allow(L010) -- start bounded by the append above\n\
               mac.update(&out[start..]);\n}\n";
    assert!(hits("L010", "crates/core/src/wire.rs", src).is_empty());
}

// ------------------------------------------------- scoping agreement

/// Token rules (FileContext::crate_name) and AST rules (engine::crate_of)
/// must derive the same crate from the same path — otherwise a file
/// could be protocol-scoped for one rule family and exempt for the
/// other.
#[test]
fn token_and_ast_rules_agree_on_crate_scoping() {
    let paths = [
        "crates/core/src/wire.rs",
        "crates/core/src/area/mod.rs",
        "crates/net/src/sim.rs",
        "crates/tree/src/plan.rs",
        "crates/crypto/src/envelope.rs",
        "crates/core/tests/integration.rs", // tests/ is not src/
        "crates/core/benches/bench.rs",
        "src/lib.rs",
        "crates/lint/src/rules.rs",
    ];
    for path in paths {
        let ctx = FileContext {
            path,
            tokens: &[],
            test_mask: &[],
        };
        assert_eq!(
            ctx.crate_name(),
            crate_of(path),
            "crate scoping diverged for {path}"
        );
    }
}

/// Both rule families fire inside a protocol crate and both stay quiet
/// outside it, for a snippet violating one rule of each family.
#[test]
fn both_rule_families_share_protocol_scope() {
    let src = "struct S { m: std::collections::HashMap<u64, u32> }\nimpl S {\n\
               fn f(&self) { let v = g().unwrap(); for x in self.m.keys() { h(x, v); } }\n}\n";
    let core = rule_ids("crates/core/src/a.rs", src);
    assert!(core.contains(&"L001".to_string()), "{core:?}");
    assert!(core.contains(&"L006".to_string()), "{core:?}");
    let outside = rule_ids("crates/baselines/src/a.rs", src);
    assert!(outside.is_empty(), "{outside:?}");
}

/// lint_source over a file equals lint_files over the singleton batch —
/// the single-file entry point is a strict wrapper.
#[test]
fn lint_source_is_singleton_lint_files() {
    let src = "fn f() { g().unwrap(); }\nfn e(n: usize) -> u32 { n as u32 }\n";
    let path = "crates/core/src/wire.rs";
    let a = lint_source(path, src);
    let b = lint_files(&[(path.to_string(), src.to_string())]);
    assert_eq!(a, b);
}
