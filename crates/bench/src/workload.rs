//! Churn workload generation.
//!
//! The paper motivates Mykil with workloads whose membership changes in
//! characteristic patterns: steady subscriber turnover, flash crowds at
//! a premiere, and correlated cancellations ("members cancelling their
//! cable memberships at the end of a month"). This module generates
//! deterministic schedules of those shapes and replays them against any
//! [`KeyManager`], measuring total rekey traffic — the macro-benchmark
//! complement to the single-event Figures 8–10.

use mykil_baselines::{KeyManager, RekeyTraffic};
use mykil_crypto::drbg::Drbg;
use mykil_tree::MemberId;

/// One membership event in a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A single member joins.
    Join(MemberId),
    /// A batch of members leaves together (aggregatable).
    LeaveBatch(Vec<MemberId>),
}

/// A deterministic churn schedule.
#[derive(Debug, Clone, Default)]
pub struct ChurnSchedule {
    /// Events in replay order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Steady churn: `rounds` rounds of `joins_per_round` joins and
    /// `leaves_per_round` single-member leaves over a standing
    /// population (the pay-per-view steady state).
    pub fn steady(
        seed: u64,
        standing: u64,
        rounds: usize,
        joins_per_round: usize,
        leaves_per_round: usize,
    ) -> ChurnSchedule {
        let mut rng = Drbg::from_seed(seed);
        let mut events = Vec::new();
        let mut next_id = standing;
        let mut present: Vec<MemberId> = (0..standing).map(MemberId).collect();
        for _ in 0..rounds {
            for _ in 0..joins_per_round {
                let m = MemberId(next_id);
                next_id += 1;
                present.push(m);
                events.push(ChurnEvent::Join(m));
            }
            for _ in 0..leaves_per_round {
                if present.is_empty() {
                    break;
                }
                let idx = rng.gen_range(present.len() as u64) as usize;
                let m = present.swap_remove(idx);
                events.push(ChurnEvent::LeaveBatch(vec![m]));
            }
        }
        ChurnSchedule { events }
    }

    /// Flash crowd: `burst` joins arrive at once (the premiere), then
    /// `stragglers` trickle in one by one.
    pub fn flash_crowd(first_id: u64, burst: usize, stragglers: usize) -> ChurnSchedule {
        let events: Vec<ChurnEvent> = (0..burst + stragglers)
            .map(|i| ChurnEvent::Join(MemberId(first_id + i as u64)))
            .collect();
        ChurnSchedule { events }
    }

    /// End-of-month cancellations: the standing population stays, then
    /// `cancellations` members leave as one correlated batch —
    /// the paper's canonical batching win.
    pub fn end_of_month(seed: u64, standing: u64, cancellations: usize) -> ChurnSchedule {
        let mut rng = Drbg::from_seed(seed);
        let mut pool: Vec<MemberId> = (0..standing).map(MemberId).collect();
        let mut batch = Vec::with_capacity(cancellations);
        for _ in 0..cancellations.min(standing as usize) {
            let idx = rng.gen_range(pool.len() as u64) as usize;
            batch.push(pool.swap_remove(idx));
        }
        batch.sort_unstable();
        ChurnSchedule {
            events: vec![ChurnEvent::LeaveBatch(batch)],
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Replays a schedule against a (pre-populated) key manager, summing
/// the rekey traffic.
pub fn replay<M: KeyManager + ?Sized>(
    manager: &mut M,
    schedule: &ChurnSchedule,
    rng: &mut Drbg,
) -> RekeyTraffic {
    let mut total = RekeyTraffic::default();
    for event in &schedule.events {
        match event {
            ChurnEvent::Join(m) => total += manager.join(*m, rng),
            ChurnEvent::LeaveBatch(ms) => total += manager.batch_leave(ms, rng),
        }
    }
    total
}

/// Replays a schedule treating every batch as individual leaves (the
/// no-aggregation baseline).
pub fn replay_unaggregated<M: KeyManager + ?Sized>(
    manager: &mut M,
    schedule: &ChurnSchedule,
    rng: &mut Drbg,
) -> RekeyTraffic {
    let mut total = RekeyTraffic::default();
    for event in &schedule.events {
        match event {
            ChurnEvent::Join(m) => total += manager.join(*m, rng),
            ChurnEvent::LeaveBatch(ms) => {
                for m in ms {
                    total += manager.leave(*m, rng);
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_baselines::{FlatLkh, IolusGroup, MykilModel};
    use mykil_tree::TreeConfig;

    #[test]
    fn steady_schedule_shape() {
        let s = ChurnSchedule::steady(1, 100, 5, 3, 2);
        assert_eq!(s.len(), 5 * (3 + 2));
        let joins = s
            .events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Join(_)))
            .count();
        assert_eq!(joins, 15);
        // Deterministic.
        assert_eq!(s.events, ChurnSchedule::steady(1, 100, 5, 3, 2).events);
    }

    #[test]
    fn end_of_month_is_one_batch() {
        let s = ChurnSchedule::end_of_month(2, 1000, 50);
        assert_eq!(s.len(), 1);
        match &s.events[0] {
            ChurnEvent::LeaveBatch(ms) => {
                assert_eq!(ms.len(), 50);
                let mut sorted = ms.clone();
                sorted.dedup();
                assert_eq!(sorted.len(), 50, "no duplicate cancellations");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn aggregation_wins_on_end_of_month() {
        let mut rng = Drbg::from_seed(3);
        let schedule = ChurnSchedule::end_of_month(9, 2000, 40);

        let mut agg = MykilModel::new(8, TreeConfig::binary(), &mut rng);
        mykil_baselines::populate(&mut agg, 2000, &mut rng);
        let mut unagg = agg.clone();

        let with = replay(&mut agg, &schedule, &mut rng).total_key_bytes();
        let without = replay_unaggregated(&mut unagg, &schedule, &mut rng).total_key_bytes();
        assert!(with < without, "with={with} without={without}");
        // Random placement across 8 areas still saves a solid fraction;
        // the paper's 40-60% applies to clustered departures (covered by
        // the Figure 10 best-case measurement).
        assert!(
            (with as f64) < 0.8 * without as f64,
            "with={with} without={without}"
        );
    }

    #[test]
    fn mykil_beats_baselines_on_steady_churn() {
        let mut rng = Drbg::from_seed(4);
        let schedule = ChurnSchedule::steady(5, 2000, 10, 4, 4);

        let mut iolus = IolusGroup::new(16);
        mykil_baselines::populate(&mut iolus, 2000, &mut rng);
        let mut lkh = FlatLkh::new(TreeConfig::binary(), &mut rng);
        mykil_baselines::populate(&mut lkh, 2000, &mut rng);
        let mut mykil = MykilModel::new(8, TreeConfig::binary(), &mut rng);
        mykil_baselines::populate(&mut mykil, 2000, &mut rng);

        let ti = replay(&mut iolus, &schedule, &mut rng).total_key_bytes();
        let tl = replay(&mut lkh, &schedule, &mut rng).total_key_bytes();
        let tm = replay(&mut mykil, &schedule, &mut rng).total_key_bytes();
        assert!(tm < ti, "mykil {tm} vs iolus {ti}");
        assert!(tm <= tl, "mykil {tm} vs lkh {tl}");
    }

    #[test]
    fn flash_crowd_joins_everyone() {
        let mut rng = Drbg::from_seed(6);
        let mut m = MykilModel::new(4, TreeConfig::quad(), &mut rng);
        let schedule = ChurnSchedule::flash_crowd(0, 64, 8);
        assert!(!schedule.is_empty());
        replay(&mut m, &schedule, &mut rng);
        assert_eq!(m.member_count(), 72);
    }
}
