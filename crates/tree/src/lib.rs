//! The auxiliary-key tree at the heart of Mykil's rekeying.
//!
//! Every Mykil area controller maintains a tree of cryptographic keys
//! (Section III-C of the paper): the root is the *area key*, interior
//! nodes hold *auxiliary keys*, and each member is associated with a
//! distinct leaf holding that member's individual key. A member knows
//! exactly the keys on the path from its leaf to the root.
//!
//! This crate implements the paper's exact semantics:
//!
//! - **Join** (Figure 4): occupy an empty leaf if one exists; otherwise
//!   split the shallowest, left-most occupied leaf into `arity` children,
//!   moving the displaced member to the first child and the newcomer to
//!   the second. Keys along the new member's path are refreshed and
//!   distributed encrypted under their *previous* versions.
//! - **Leave** (Figure 5): refresh every key from the departed leaf's
//!   parent up to the root; each fresh key is distributed encrypted under
//!   each child's key. The vacated leaf is *kept* (not pruned) to make
//!   future joins cheap — an explicit Mykil design decision.
//! - **Batching** (Figure 6, Section III-E): aggregate consecutive
//!   join/leave events so shared path segments are refreshed only once,
//!   saving the 40–60% of key-update traffic the paper reports.
//!
//! The tree produces [`RekeyPlan`]s — a description of which keys changed
//! and what each new key must be encrypted under — which the `mykil`
//! protocol crate turns into actual wire messages, and which the
//! benchmarks use directly for byte accounting.
//!
//! # Example
//!
//! ```
//! use mykil_crypto::drbg::Drbg;
//! use mykil_tree::{KeyTree, MemberId, TreeConfig};
//!
//! let mut rng = Drbg::from_seed(1);
//! let mut tree = KeyTree::new(TreeConfig::quad(), &mut rng);
//! for m in 0..10 {
//!     tree.join(MemberId(m), &mut rng)?;
//! }
//! let plan = tree.leave(MemberId(3), &mut rng)?;
//! assert!(!plan.changes.is_empty());
//! assert_eq!(tree.member_count(), 9);
//! # Ok::<(), mykil_tree::TreeError>(())
//! ```

mod aux;
mod batch;
mod dot;
mod error;
mod member_view;
mod plan;
mod snapshot;
mod store;
mod tree;

pub use aux::{AreaTree, AuxTree};
pub use batch::BatchOutcome;
pub use error::TreeError;
pub use member_view::MemberView;
pub use plan::{EncryptUnder, KeyChange, RekeyPlan, UnicastKeys};
pub use snapshot::SnapshotError;
pub use store::{ExplicitKeys, KeyStore, KhfKeys, RotateStyle};
pub use tree::{KeyTree, KhfTree, NodeIdx, Tree, TreeBackend, TreeConfig};

/// Identifier of a group member within one area's key tree.
///
/// The protocol layer maps these to real client identities; the tree
/// only needs them to be unique within an area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId(pub u64);

impl std::fmt::Display for MemberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Symmetric key length used for size accounting (the paper's 128-bit
/// keys).
pub const KEY_LEN: usize = mykil_crypto::SYMMETRIC_KEY_LEN;
