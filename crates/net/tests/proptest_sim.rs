//! Property-based tests for the simulator: determinism under arbitrary
//! failure schedules, and liveness of the event loop.

use mykil_net::{Context, Node, NodeId, Simulator, Time};
use proptest::prelude::*;

/// A chatty node: echoes every message back and gossips on a timer.
struct Gossip {
    peers: Vec<NodeId>,
    received: u64,
    rounds: u32,
}

impl Node for Gossip {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(mykil_net::Duration::from_millis(10), 1);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {
        self.received += 1;
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        for &p in &self.peers {
            ctx.send(p, "gossip", vec![0x67u8; 8]);
        }
        if self.rounds > 0 {
            self.rounds -= 1;
            ctx.set_timer(mykil_net::Duration::from_millis(10), 1);
        }
    }
}

#[derive(Debug, Clone)]
enum Fault {
    Partition(u8, u8),
    Heal,
    Crash(u8),
    Restart(u8),
    CutLink(u8, u8),
    Loss(u16),
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Fault::Partition(a, b)),
        Just(Fault::Heal),
        any::<u8>().prop_map(Fault::Crash),
        any::<u8>().prop_map(Fault::Restart),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Fault::CutLink(a, b)),
        (0u16..1000).prop_map(Fault::Loss),
    ]
}

const NODES: usize = 5;

fn run(seed: u64, faults: &[Fault]) -> (u64, Vec<u64>) {
    let mut sim = Simulator::new(seed);
    let ids: Vec<NodeId> = (0..NODES).map(NodeId::from_index).collect();
    for i in 0..NODES {
        let peers = ids.iter().copied().filter(|p| p.index() != i).collect();
        sim.add_node(Gossip {
            peers,
            received: 0,
            rounds: 20,
        });
    }
    for (i, fault) in faults.iter().enumerate() {
        // Interleave faults with simulation progress.
        sim.run_until(Time::from_millis(20 * (i as u64 + 1)));
        match fault {
            Fault::Partition(a, b) => {
                sim.partition(ids[*a as usize % NODES], *b as u32 % 3);
            }
            Fault::Heal => sim.heal_partitions(),
            Fault::Crash(a) => sim.crash(ids[*a as usize % NODES]),
            Fault::Restart(a) => {
                sim.restart(ids[*a as usize % NODES]);
            }
            Fault::CutLink(a, b) => {
                sim.cut_link(ids[*a as usize % NODES], ids[*b as usize % NODES]);
            }
            Fault::Loss(p) => sim.set_loss_per_mille(*p as u32),
        }
    }
    sim.run_until(Time::from_secs(2));
    let received: Vec<u64> = (0..NODES)
        .map(|i| sim.node::<Gossip>(ids[i]).received)
        .collect();
    (sim.events_processed(), received)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical seeds and fault schedules give bit-identical outcomes,
    /// regardless of what the schedule does.
    #[test]
    fn determinism_under_arbitrary_faults(
        seed in any::<u64>(),
        faults in proptest::collection::vec(fault_strategy(), 0..10),
    ) {
        let a = run(seed, &faults);
        let b = run(seed, &faults);
        prop_assert_eq!(a, b);
    }

    /// The event loop always terminates (timers are bounded here) and
    /// never panics, whatever the failure schedule.
    #[test]
    fn event_loop_terminates(
        seed in any::<u64>(),
        faults in proptest::collection::vec(fault_strategy(), 0..10),
    ) {
        let (events, received) = run(seed, &faults);
        prop_assert!(events > 0);
        // With no faults at all every node hears from all peers.
        if faults.is_empty() {
            for r in received {
                prop_assert!(r > 0);
            }
        }
    }
}
