//! Chaos harness: seeded, replayable fault schedules for the simulator.
//!
//! The ROADMAP's fault-tolerance north star asks for "as many scenarios
//! as you can imagine"; this module is the machine that imagines them.
//! A [`FaultPlan`] is an ordered schedule of [`FaultSpec`]s — crashes,
//! restarts, partitions and heals, link cuts, loss/duplication/reorder
//! knobs, per-node timer skew, and storage faults (lying fsync with a
//! lost or torn tail, checkpoint corruption — see
//! [`NodeStorage`](crate::NodeStorage)). Plans are either hand-written (for
//! regression tests) or generated from a seed ([`FaultPlan::random`]),
//! and a [`ChaosDriver`] injects them into a [`Simulator`] at the
//! scheduled virtual times, recording each injection into the trace as
//! [`TraceEvent::FaultInjected`](crate::TraceEvent).
//!
//! Every plan serializes to a line-oriented text form
//! ([`FaultPlan::serialize`] / [`FaultPlan::parse`]); a soak test that
//! trips an invariant dumps this text so the failing schedule replays
//! as a deterministic regression test.
//!
//! Randomly generated plans are *bounded*: every crash is paired with a
//! restart, every partition/cut/knob with its heal/restore/reset, and a
//! final cleanup batch re-heals the world before the horizon — so a
//! protocol that tolerates the faults at all has a quiescent window at
//! the end of the plan in which global invariants must hold.

use crate::id::NodeId;
use crate::sim::Simulator;
use crate::storage::StoreFault;
use crate::time::{Duration, Time};
use mykil_crypto::drbg::Drbg;
use std::fmt;

/// One injectable fault (or fault-clearing action).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Crash a node (volatile state, timers and pending reliables die;
    /// only stable storage survives).
    Crash(NodeId),
    /// Restart a crashed node (no-op on a live node).
    Restart(NodeId),
    /// Move a node into partition `label` (0 = rejoin the default
    /// partition, i.e. heal this node).
    Partition(NodeId, u32),
    /// Heal all partitions.
    HealPartitions,
    /// Cut the directed link `from -> to`.
    CutLink(NodeId, NodeId),
    /// Restore the directed link `from -> to`.
    RestoreLink(NodeId, NodeId),
    /// Set uniform message loss (permille; 0 clears).
    Loss(u32),
    /// Set message duplication probability (permille; 0 clears).
    Duplication(u32),
    /// Set reorder probability (permille) and extra-delay window
    /// (`0 0` clears).
    Reorder(u32, Duration),
    /// Scale a node's timers to permille/1000 of nominal (1000 resets).
    TimerSkew(NodeId, u32),
    /// Arm a lying fsync on the node's storage: syncs report success
    /// but persist nothing until the next crash discards the tail.
    StorageLostTail(NodeId),
    /// Like [`FaultSpec::StorageLostTail`], but the crash leaves the
    /// first unsynced record torn (checksum-invalid) in the log.
    StorageTorn(NodeId),
    /// Corrupt the node's newest valid checkpoint slot (bit-rot),
    /// effective immediately.
    CorruptCheckpoint(NodeId),
    /// Reads of the node's WAL come back short until healed: recovery
    /// sees the final record truncated (needs a fault-injecting
    /// backend, e.g. [`FaultyStore`](crate::FaultyStore)).
    StorageShortRead(NodeId),
    /// The node's WAL appends are silently dropped until healed (needs
    /// a fault-injecting backend).
    StorageAppendFail(NodeId),
    /// Corrupt a specific checkpoint slot (0 or 1) of the node,
    /// regardless of which is newest.
    CorruptSlot(NodeId, u8),
    /// Disarm any storage fault on the node and honestly flush its
    /// device cache.
    StorageHeal(NodeId),
}

impl FaultSpec {
    /// Applies this fault to the simulator.
    pub fn apply(&self, sim: &mut Simulator) {
        match *self {
            FaultSpec::Crash(n) => sim.crash(n),
            FaultSpec::Restart(n) => {
                sim.restart(n);
            }
            FaultSpec::Partition(n, label) => sim.partition(n, label),
            FaultSpec::HealPartitions => sim.heal_partitions(),
            FaultSpec::CutLink(a, b) => sim.cut_link(a, b),
            FaultSpec::RestoreLink(a, b) => sim.restore_link(a, b),
            FaultSpec::Loss(pm) => sim.set_loss_per_mille(pm),
            FaultSpec::Duplication(pm) => sim.set_duplication_per_mille(pm),
            FaultSpec::Reorder(pm, window) => sim.set_reorder(pm, window),
            FaultSpec::TimerSkew(n, pm) => sim.set_timer_skew_per_mille(n, pm),
            FaultSpec::StorageLostTail(n) => sim.inject_storage_fault(n, StoreFault::LostTail),
            FaultSpec::StorageTorn(n) => sim.inject_storage_fault(n, StoreFault::TornWrite),
            FaultSpec::CorruptCheckpoint(n) => {
                sim.inject_storage_fault(n, StoreFault::CorruptCheckpoint)
            }
            FaultSpec::StorageShortRead(n) => sim.inject_storage_fault(n, StoreFault::ShortRead),
            FaultSpec::StorageAppendFail(n) => sim.inject_storage_fault(n, StoreFault::AppendFail),
            FaultSpec::CorruptSlot(n, slot) => {
                sim.inject_storage_fault(n, StoreFault::CorruptSlot(slot))
            }
            FaultSpec::StorageHeal(n) => sim.storage_mut(n).heal(),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultSpec::Crash(n) => write!(f, "crash {}", n.index()),
            FaultSpec::Restart(n) => write!(f, "restart {}", n.index()),
            FaultSpec::Partition(n, label) => write!(f, "partition {} {}", n.index(), label),
            FaultSpec::HealPartitions => write!(f, "heal"),
            FaultSpec::CutLink(a, b) => write!(f, "cut {} {}", a.index(), b.index()),
            FaultSpec::RestoreLink(a, b) => write!(f, "restore {} {}", a.index(), b.index()),
            FaultSpec::Loss(pm) => write!(f, "loss {pm}"),
            FaultSpec::Duplication(pm) => write!(f, "dup {pm}"),
            FaultSpec::Reorder(pm, w) => write!(f, "reorder {pm} {}", w.as_micros()),
            FaultSpec::TimerSkew(n, pm) => write!(f, "skew {} {pm}", n.index()),
            FaultSpec::StorageLostTail(n) => write!(f, "lost-tail {}", n.index()),
            FaultSpec::StorageTorn(n) => write!(f, "torn {}", n.index()),
            FaultSpec::CorruptCheckpoint(n) => write!(f, "ckpt-corrupt {}", n.index()),
            FaultSpec::StorageShortRead(n) => write!(f, "wal-short-read {}", n.index()),
            FaultSpec::StorageAppendFail(n) => write!(f, "wal-append-fail {}", n.index()),
            FaultSpec::CorruptSlot(n, slot) => {
                write!(f, "ckpt-slot-corrupt {} {slot}", n.index())
            }
            FaultSpec::StorageHeal(n) => write!(f, "storage-heal {}", n.index()),
        }
    }
}

/// A fault bound to its injection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedFault {
    /// Virtual time of injection.
    pub at: Time,
    /// What to inject.
    pub fault: FaultSpec,
}

/// Parameters for [`FaultPlan::random`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Nodes eligible for targeted faults (crash, partition, cut, skew).
    /// Typically the protocol nodes minus any the scenario must keep
    /// alive.
    pub targets: Vec<NodeId>,
    /// All faults are injected and cleared within this window; the tail
    /// tenth of the horizon is fault-free so the system can quiesce.
    pub horizon: Duration,
    /// Number of fault episodes (each contributes an inject + a clear).
    pub episodes: usize,
    /// Upper bound for generated loss/duplication/reorder probabilities
    /// (permille).
    pub max_knob_per_mille: u32,
    /// Include storage-fault episodes (lying fsync with a lost or torn
    /// tail, checkpoint corruption), each paired with a crash/restart so
    /// the fault actually bites. The cleanup batch heals every target's
    /// storage.
    pub storage_faults: bool,
}

/// An ordered, replayable schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Appends a fault; the plan is kept sorted by time (stable, so
    /// same-time faults apply in insertion order).
    ///
    /// Inserts at the position found by binary search instead of
    /// re-sorting the whole vector on every push — the old
    /// `sort_by_key` made building an n-fault plan O(n² log n).
    /// `partition_point(at <= )` lands *after* any equal-time faults,
    /// which is exactly where a stable sort would have kept a new
    /// arrival, so generated plans are byte-identical to before.
    pub fn push(&mut self, at: Time, fault: FaultSpec) {
        let pos = self.faults.partition_point(|f| f.at <= at);
        self.faults.insert(pos, TimedFault { at, fault });
    }

    /// The scheduled faults, in injection order.
    pub fn faults(&self) -> &[TimedFault] {
        &self.faults
    }

    /// Generates a bounded random plan from a seed: each episode picks a
    /// fault family, an onset and a duration, and schedules both the
    /// injection and the matching clear; a cleanup batch at 90% of the
    /// horizon restores full connectivity regardless.
    pub fn random(seed: u64, opts: &ChaosOptions) -> FaultPlan {
        let mut rng = Drbg::from_seed(seed ^ 0xc4a0_5bad_f00d_0001);
        let mut plan = FaultPlan::new();
        let horizon_us = opts.horizon.as_micros().max(1000);
        let cleanup_us = horizon_us * 9 / 10;
        let pick = |rng: &mut Drbg, nodes: &[NodeId]| {
            let i = rng.gen_range(nodes.len() as u64) as usize;
            nodes.get(i).copied().unwrap_or(NodeId::from_index(0))
        };
        // Random knob values are tiny by construction (`gen_range`
        // bound), but the narrowing still goes through `try_from` so
        // lint L009 holds across the whole file.
        let knob = |rng: &mut Drbg, bound: u64| -> u32 {
            u32::try_from(rng.gen_range(bound.max(1))).unwrap_or(u32::MAX)
        };
        for _ in 0..opts.episodes {
            if opts.targets.is_empty() {
                break;
            }
            // Onset in the first 60% of the horizon, duration up to 25%,
            // clamped to finish before the cleanup batch.
            let start = rng.gen_range(horizon_us * 6 / 10).max(1);
            let dur = (rng.gen_range(horizon_us / 4) + 1).min(cleanup_us - start.min(cleanup_us));
            let end = (start + dur).min(cleanup_us.saturating_sub(1)).max(start + 1);
            let (t0, t1) = (Time::from_micros(start), Time::from_micros(end));
            let families = if opts.storage_faults { 10 } else { 7 };
            match rng.gen_range(families) {
                0 => {
                    let n = pick(&mut rng, &opts.targets);
                    plan.push(t0, FaultSpec::Crash(n));
                    plan.push(t1, FaultSpec::Restart(n));
                }
                1 => {
                    let n = pick(&mut rng, &opts.targets);
                    let label = 1 + knob(&mut rng, 3);
                    plan.push(t0, FaultSpec::Partition(n, label));
                    plan.push(t1, FaultSpec::Partition(n, 0));
                }
                2 => {
                    let a = pick(&mut rng, &opts.targets);
                    let b = pick(&mut rng, &opts.targets);
                    if a != b {
                        plan.push(t0, FaultSpec::CutLink(a, b));
                        plan.push(t1, FaultSpec::RestoreLink(a, b));
                    }
                }
                3 => {
                    let pm = 1 + knob(&mut rng, u64::from(opts.max_knob_per_mille));
                    plan.push(t0, FaultSpec::Loss(pm));
                    plan.push(t1, FaultSpec::Loss(0));
                }
                4 => {
                    let pm = 1 + knob(&mut rng, u64::from(opts.max_knob_per_mille));
                    plan.push(t0, FaultSpec::Duplication(pm));
                    plan.push(t1, FaultSpec::Duplication(0));
                }
                5 => {
                    let pm = 1 + knob(&mut rng, u64::from(opts.max_knob_per_mille));
                    let window = Duration::from_micros(1000 + rng.gen_range(horizon_us / 100));
                    plan.push(t0, FaultSpec::Reorder(pm, window));
                    plan.push(t1, FaultSpec::Reorder(0, Duration::ZERO));
                }
                6 => {
                    let n = pick(&mut rng, &opts.targets);
                    // 500..2000 permille: clock half-speed to double-speed.
                    let pm = 500 + knob(&mut rng, 1500);
                    plan.push(t0, FaultSpec::TimerSkew(n, pm));
                    plan.push(t1, FaultSpec::TimerSkew(n, 1000));
                }
                // Storage episodes pair the fault with a crash (so the
                // lying sync actually loses data) and a restart (so
                // recovery runs against the damaged log). The lying
                // sync arms at t0 and the crash lands at t1: every
                // sync the node issues inside the window parks in the
                // device cache instead of reaching the platter, and is
                // genuinely lost (or torn) at the crash. Arming at the
                // crash instant would give a zero-length window in
                // which nothing was ever lied about.
                7 => {
                    let n = pick(&mut rng, &opts.targets);
                    plan.push(t0, FaultSpec::StorageLostTail(n));
                    plan.push(t1, FaultSpec::Crash(n));
                    plan.push(t1, FaultSpec::Restart(n));
                }
                8 => {
                    let n = pick(&mut rng, &opts.targets);
                    plan.push(t0, FaultSpec::StorageTorn(n));
                    plan.push(t1, FaultSpec::Crash(n));
                    plan.push(t1, FaultSpec::Restart(n));
                }
                // Checkpoint corruption is immediate damage, not a
                // lying sync, so same-time corrupt+crash is fine.
                _ => {
                    let n = pick(&mut rng, &opts.targets);
                    plan.push(t0, FaultSpec::CorruptCheckpoint(n));
                    plan.push(t0, FaultSpec::Crash(n));
                    plan.push(t1, FaultSpec::Restart(n));
                }
            }
        }
        // Cleanup batch: restore the world whatever the episodes did.
        let t = Time::from_micros(cleanup_us);
        plan.push(t, FaultSpec::HealPartitions);
        plan.push(t, FaultSpec::Loss(0));
        plan.push(t, FaultSpec::Duplication(0));
        plan.push(t, FaultSpec::Reorder(0, Duration::ZERO));
        for &n in &opts.targets {
            if opts.storage_faults {
                plan.push(t, FaultSpec::StorageHeal(n));
            }
            plan.push(t, FaultSpec::Restart(n));
            plan.push(t, FaultSpec::TimerSkew(n, 1000));
        }
        plan
    }

    /// Serializes the plan to its line-oriented text form
    /// (`<at_us> <fault>`), suitable for dumping on failure and feeding
    /// back through [`FaultPlan::parse`].
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for f in &self.faults {
            out.push_str(&format!("{} {}\n", f.at.as_micros(), f.fault));
        }
        out
    }

    /// Parses the text form produced by [`FaultPlan::serialize`].
    /// Empty lines and `#` comments are ignored.
    ///
    /// Errors carry the 1-based line number *and* the offending line
    /// text, so a failed replay of a dumped schedule points straight at
    /// the bad fault line instead of making the operator diff the dump
    /// against the verb table by hand.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let err = |what: &str| format!("line {}: {what} in `{line}`", lineno + 1);
            let at = words
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse::<u64>()
                .map_err(|_| err("bad time"))?;
            let verb = words.next().ok_or_else(|| err("missing fault verb"))?;
            let mut num = |what: &str| -> Result<u64, String> {
                words
                    .next()
                    .ok_or_else(|| format!("line {}: missing {what} in `{line}`", lineno + 1))?
                    .parse::<u64>()
                    .map_err(|_| format!("line {}: bad {what} in `{line}`", lineno + 1))
            };
            // Node ids, partition labels and per-mille rates are all
            // u32 in the specs: a larger value in the text form is
            // hostile input (`NodeId::from_index` and a bare `as u32`
            // would both silently truncate it onto a real value), so
            // each narrows with a line-numbered range error instead.
            let narrow = |v: u64, what: &str| -> Result<u32, String> {
                u32::try_from(v)
                    .map_err(|_| format!("line {}: {what} out of range in `{line}`", lineno + 1))
            };
            let node = |v: u64, what: &str| -> Result<NodeId, String> {
                narrow(v, what).map(|x| NodeId::from_index(x as usize))
            };
            let fault = match verb {
                "crash" => FaultSpec::Crash(node(num("node")?, "node")?),
                "restart" => FaultSpec::Restart(node(num("node")?, "node")?),
                "partition" => FaultSpec::Partition(
                    node(num("node")?, "node")?,
                    narrow(num("label")?, "label")?,
                ),
                "heal" => FaultSpec::HealPartitions,
                "cut" => FaultSpec::CutLink(
                    node(num("from")?, "from")?,
                    node(num("to")?, "to")?,
                ),
                "restore" => FaultSpec::RestoreLink(
                    node(num("from")?, "from")?,
                    node(num("to")?, "to")?,
                ),
                "loss" => FaultSpec::Loss(narrow(num("per-mille")?, "per-mille")?),
                "dup" => FaultSpec::Duplication(narrow(num("per-mille")?, "per-mille")?),
                "reorder" => FaultSpec::Reorder(
                    narrow(num("per-mille")?, "per-mille")?,
                    Duration::from_micros(num("window")?),
                ),
                "skew" => FaultSpec::TimerSkew(
                    node(num("node")?, "node")?,
                    narrow(num("per-mille")?, "per-mille")?,
                ),
                "lost-tail" => FaultSpec::StorageLostTail(node(num("node")?, "node")?),
                "torn" => FaultSpec::StorageTorn(node(num("node")?, "node")?),
                "ckpt-corrupt" => FaultSpec::CorruptCheckpoint(node(num("node")?, "node")?),
                "wal-short-read" => FaultSpec::StorageShortRead(node(num("node")?, "node")?),
                "wal-append-fail" => FaultSpec::StorageAppendFail(node(num("node")?, "node")?),
                "ckpt-slot-corrupt" => {
                    let n = node(num("node")?, "node")?;
                    let slot = match u8::try_from(num("slot")?) {
                        Ok(s) if s <= 1 => s,
                        _ => return Err(err("bad slot (must be 0 or 1)")),
                    };
                    FaultSpec::CorruptSlot(n, slot)
                }
                "storage-heal" => FaultSpec::StorageHeal(node(num("node")?, "node")?),
                other => return Err(err(&format!("unknown fault verb `{other}`"))),
            };
            plan.push(Time::from_micros(at), fault);
        }
        Ok(plan)
    }
}

/// Steps a simulator through a [`FaultPlan`], injecting each fault at
/// its scheduled time and recording it into the trace.
#[derive(Debug)]
pub struct ChaosDriver {
    plan: FaultPlan,
    next: usize,
}

impl ChaosDriver {
    /// Creates a driver over `plan`.
    pub fn new(plan: FaultPlan) -> ChaosDriver {
        ChaosDriver { plan, next: 0 }
    }

    /// The plan being driven (e.g. to dump on failure).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether every scheduled fault has been injected.
    pub fn finished(&self) -> bool {
        self.next >= self.plan.faults.len()
    }

    /// Runs the simulator to `deadline`, injecting every plan fault
    /// whose time falls within the span. Faults scheduled at exactly
    /// `deadline` are injected (the span is inclusive), so splitting a
    /// run into back-to-back `run_until` windows injects every fault
    /// exactly once regardless of where the window boundaries land.
    pub fn run_until(&mut self, sim: &mut Simulator, deadline: Time) {
        self.run_until_observed(sim, deadline, |_, _| {});
    }

    /// Like [`Self::run_until`], but calls `observe` immediately after
    /// each fault is applied (the simulator is at the fault's virtual
    /// time, the fault has taken effect, and no later event has run).
    /// Harnesses use this to snapshot ledgers at crash instants — e.g.
    /// the scale storm records byte counters per AC crash so the
    /// degraded window can be measured without replaying the run.
    pub fn run_until_observed(
        &mut self,
        sim: &mut Simulator,
        deadline: Time,
        mut observe: impl FnMut(&mut Simulator, &TimedFault),
    ) {
        while let Some(tf) = self.plan.faults.get(self.next) {
            if tf.at > deadline {
                break;
            }
            let tf = tf.clone();
            self.next += 1;
            sim.run_until(tf.at);
            sim.record_fault(tf.fault.to_string());
            tf.fault.apply(sim);
            observe(sim, &tf);
        }
        sim.run_until(deadline);
    }

    /// Convenience: runs for a span of virtual time (see
    /// [`Self::run_until`]).
    pub fn run_for(&mut self, sim: &mut Simulator, d: Duration) {
        let deadline = sim.now() + d;
        self.run_until(sim, deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::sim::Node;
    use crate::trace::TraceEvent;

    #[test]
    fn serialize_parse_round_trip() {
        let mut plan = FaultPlan::new();
        let n = |i| NodeId::from_index(i);
        plan.push(Time::from_millis(5), FaultSpec::Crash(n(2)));
        plan.push(Time::from_millis(9), FaultSpec::Restart(n(2)));
        plan.push(Time::from_millis(1), FaultSpec::Partition(n(3), 7));
        plan.push(Time::from_millis(2), FaultSpec::HealPartitions);
        plan.push(Time::from_millis(3), FaultSpec::CutLink(n(0), n(1)));
        plan.push(Time::from_millis(4), FaultSpec::RestoreLink(n(0), n(1)));
        plan.push(Time::from_millis(6), FaultSpec::Loss(150));
        plan.push(Time::from_millis(7), FaultSpec::Duplication(80));
        plan.push(
            Time::from_millis(8),
            FaultSpec::Reorder(200, Duration::from_micros(1500)),
        );
        plan.push(Time::from_millis(10), FaultSpec::TimerSkew(n(4), 1500));
        plan.push(Time::from_millis(11), FaultSpec::StorageLostTail(n(2)));
        plan.push(Time::from_millis(12), FaultSpec::StorageTorn(n(3)));
        plan.push(Time::from_millis(13), FaultSpec::CorruptCheckpoint(n(2)));
        plan.push(Time::from_millis(14), FaultSpec::StorageHeal(n(2)));
        let text = plan.serialize();
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(plan, back);
        // Idempotent through a second round trip.
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("abc crash 1").is_err());
        assert!(FaultPlan::parse("100 explode 1").is_err());
        assert!(FaultPlan::parse("100 crash").is_err());
        assert!(FaultPlan::parse("100 partition 1 x").is_err());
        // Comments and blanks are fine.
        let ok = FaultPlan::parse("# a comment\n\n100 heal\n");
        assert_eq!(ok.unwrap().faults().len(), 1);
    }

    /// Satellite fix (ISSUE 8): parse errors must point at the bad
    /// fault line — 1-based line number plus the offending text — so a
    /// dumped-schedule replay failure is debuggable from the message
    /// alone.
    #[test]
    fn parse_errors_carry_line_number_and_offending_text() {
        let text = "0 heal\n100 explode 1\n200 heal\n";
        let err = FaultPlan::parse(text).unwrap_err();
        assert!(err.contains("line 2"), "no line number in: {err}");
        assert!(err.contains("`100 explode 1`"), "no offending text in: {err}");

        // Comment/blank lines still count toward the line number.
        let text = "# header\n\n300 partition 5 x\n";
        let err = FaultPlan::parse(text).unwrap_err();
        assert!(err.contains("line 3"), "no line number in: {err}");
        assert!(err.contains("`300 partition 5 x`"), "no offending text in: {err}");

        let err = FaultPlan::parse("oops crash 1").unwrap_err();
        assert!(err.contains("line 1") && err.contains("bad time"), "bad: {err}");
        assert!(err.contains("`oops crash 1`"), "no offending text in: {err}");
    }

    #[test]
    fn random_plans_are_seeded_and_bounded() {
        let opts = ChaosOptions {
            targets: (1..6).map(NodeId::from_index).collect(),
            horizon: Duration::from_secs(10),
            episodes: 12,
            max_knob_per_mille: 300,
            storage_faults: false,
        };
        let a = FaultPlan::random(42, &opts);
        let b = FaultPlan::random(42, &opts);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::random(43, &opts);
        assert_ne!(a, c, "different seed, different plan");
        // Bounded: the cleanup batch restores everything at 90%.
        let cleanup = Time::from_micros(Duration::from_secs(10).as_micros() * 9 / 10);
        assert!(a.faults().iter().all(|f| f.at <= cleanup));
        assert!(a
            .faults()
            .iter()
            .any(|f| f.fault == FaultSpec::HealPartitions && f.at == cleanup));
        for target in &opts.targets {
            assert!(a
                .faults()
                .iter()
                .any(|f| f.fault == FaultSpec::Restart(*target) && f.at == cleanup));
        }
    }

    /// Satellite fix (ISSUE 7): `push` used to re-sort the whole vector
    /// on every call. The sorted-position insert must (a) keep large
    /// plan construction cheap and (b) order faults exactly as the old
    /// stable sort did, so serialized plans — and therefore replays —
    /// stay byte-identical.
    #[test]
    fn large_plan_builds_fast_and_matches_stable_sort_order() {
        let mut rng = Drbg::from_seed(0x10ad_91a4);
        let n = |i: u64| NodeId::from_index((i % 64) as usize);
        let faults: Vec<(Time, FaultSpec)> = (0..10_000u64)
            .map(|_| {
                let at = Time::from_micros(rng.gen_range(1_000_000));
                let fault = match rng.gen_range(4) {
                    0 => FaultSpec::Crash(n(rng.gen_range(64))),
                    1 => FaultSpec::Restart(n(rng.gen_range(64))),
                    2 => FaultSpec::Loss(rng.gen_range(300) as u32),
                    _ => FaultSpec::HealPartitions,
                };
                (at, fault)
            })
            .collect();

        // mykil-lint: allow(L004) -- wall-clock bound on test *build* time, not simulated time
        let start = std::time::Instant::now();
        let mut plan = FaultPlan::new();
        for (at, fault) in &faults {
            plan.push(*at, fault.clone());
        }
        // Generous even for a slow debug CI runner; the old
        // sort-per-push implementation took tens of seconds here.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "10k-fault plan took {:?} to build",
            start.elapsed()
        );

        // Reference: what the old implementation produced — append
        // everything, then one stable sort by time.
        let mut reference: Vec<TimedFault> = faults
            .iter()
            .map(|(at, fault)| TimedFault {
                at: *at,
                fault: fault.clone(),
            })
            .collect();
        reference.sort_by_key(|f| f.at);
        assert_eq!(plan.faults(), &reference[..]);

        // And the replay text form round-trips unchanged.
        assert_eq!(FaultPlan::parse(&plan.serialize()).unwrap(), plan);
    }

    #[test]
    fn storage_fault_plans_pair_crashes_and_heal_in_cleanup() {
        let opts = ChaosOptions {
            targets: (1..4).map(NodeId::from_index).collect(),
            horizon: Duration::from_secs(10),
            episodes: 30,
            max_knob_per_mille: 100,
            storage_faults: true,
        };
        let plan = FaultPlan::random(11, &opts);
        // Round-trips through the text form.
        assert_eq!(FaultPlan::parse(&plan.serialize()).unwrap(), plan);
        // Every storage arm is followed by a crash of the same node at
        // or after the arm time — lying syncs need a real window of
        // virtual time before the crash so that syncs issued inside it
        // actually park and get lost; checkpoint corruption is
        // immediate and may share the crash instant.
        let faults = plan.faults();
        let mut lying_windows = 0u32;
        let mut saw_storage_episode = false;
        for (i, tf) in faults.iter().enumerate() {
            let (armed, lying) = match tf.fault {
                FaultSpec::StorageLostTail(n) | FaultSpec::StorageTorn(n) => (Some(n), true),
                FaultSpec::CorruptCheckpoint(n) => (Some(n), false),
                _ => (None, false),
            };
            if let Some(n) = armed {
                if tf.at == Time::from_micros(Duration::from_secs(10).as_micros() * 9 / 10) {
                    continue; // (not generated, but be robust)
                }
                saw_storage_episode = true;
                let crash = faults
                    .iter()
                    .skip(i + 1)
                    .find(|f| f.fault == FaultSpec::Crash(n));
                let crash = crash.unwrap_or_else(|| {
                    panic!("storage fault on {n:?} at {:?} has no later crash", tf.at)
                });
                assert!(crash.at >= tf.at);
                if lying {
                    assert!(
                        crash.at > tf.at,
                        "lying sync armed at the crash instant: zero-length window"
                    );
                    lying_windows += 1;
                }
            }
        }
        assert!(saw_storage_episode, "30 episodes produced no storage fault");
        assert!(lying_windows > 0, "30 episodes produced no lying-sync window");
        // Cleanup heals every target's storage.
        let cleanup = Time::from_micros(Duration::from_secs(10).as_micros() * 9 / 10);
        for target in &opts.targets {
            assert!(faults
                .iter()
                .any(|f| f.fault == FaultSpec::StorageHeal(*target) && f.at == cleanup));
        }
    }

    /// Two nodes ping each other once a millisecond.
    struct Chatter {
        peer: NodeId,
        got: u32,
    }

    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(Duration::from_millis(1), 0);
        }
        fn on_restarted(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(Duration::from_millis(1), 0);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {
            self.got += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
            ctx.send(self.peer, "chat", vec![1]);
            ctx.set_timer(Duration::from_millis(1), 0);
        }
    }

    #[test]
    fn driver_injects_at_scheduled_times_and_traces() {
        let mut sim = Simulator::new(9);
        sim.enable_trace(10_000);
        let a = sim.add_node(Chatter {
            peer: NodeId::from_index(1),
            got: 0,
        });
        let b = sim.add_node(Chatter { peer: a, got: 0 });
        let mut plan = FaultPlan::new();
        plan.push(Time::from_millis(10), FaultSpec::Crash(b));
        plan.push(Time::from_millis(20), FaultSpec::Restart(b));
        let mut driver = ChaosDriver::new(plan);
        driver.run_until(&mut sim, Time::from_millis(40));
        assert!(driver.finished());
        let faults: Vec<String> = sim
            .trace_events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FaultInjected { at, desc } => {
                    Some(format!("{} {}", at.as_micros(), desc))
                }
                _ => None,
            })
            .collect();
        assert_eq!(faults, vec!["10000 crash 1", "20000 restart 1"]);
        // b kept chatting after its restart (on_restarted re-armed the
        // timer), so a heard from it again in the final 20ms.
        assert!(sim.node::<Chatter>(a).got > 20);
    }

    #[test]
    fn random_plan_replays_identically_after_round_trip() {
        let opts = ChaosOptions {
            targets: vec![NodeId::from_index(0), NodeId::from_index(1)],
            horizon: Duration::from_secs(2),
            episodes: 8,
            max_knob_per_mille: 200,
            storage_faults: true,
        };
        let plan = FaultPlan::random(7, &opts);
        let replayed = FaultPlan::parse(&plan.serialize()).unwrap();
        let run = |plan: FaultPlan| {
            let mut sim = Simulator::new(5);
            let a = sim.add_node(Chatter {
                peer: NodeId::from_index(1),
                got: 0,
            });
            let b = sim.add_node(Chatter { peer: a, got: 0 });
            let mut driver = ChaosDriver::new(plan);
            driver.run_until(&mut sim, Time::from_secs(2));
            (
                sim.node::<Chatter>(a).got,
                sim.node::<Chatter>(b).got,
                sim.events_processed(),
            )
        };
        assert_eq!(run(plan), run(replayed));
    }
}
