//! Hybrid hot/cold membership simulation for million-member groups
//! (ISSUE 7).
//!
//! The paper claims Mykil scales to 100,000+ members; the full protocol
//! stack in this crate simulates every member as a [`mykil_net::Node`]
//! and tops out around tens of nodes per area. This module closes the
//! gap with a *hybrid* mode:
//!
//! - **Hot members** — the ones currently joining, leaving or being
//!   promoted/demoted — are real simulated nodes exchanging real
//!   messages through the event queue ([`PoolMember`]). A bounded pool
//!   of `P` such nodes drives the whole logical population: pool
//!   member `p` performs the membership events of logical members
//!   `p, p + P, p + 2P, …` in turn, so a 1,000,000-member flash crowd
//!   needs only `P` live node slots.
//! - **Cold members** — everyone else — are aggregated per area inside
//!   that area's [`ScaleAreaController`] as a
//!   [`mykil_baselines::ColdAreaModel`]: a member count, a key epoch,
//!   and closed-form rekey-byte accounting from `mykil-analysis`
//!   (validated against the measured `KeyTree` at small scale). Cold
//!   members generate **no events**, which is what makes the scale
//!   reachable.
//!
//! Lifecycle of one logical member: `JoinReq → JoinAck` (hot, real
//! messages, join rekey charged) `→ DemoteReq → DemoteAck` (absorbed
//! into the cold aggregate, free) and later either `PromoteReq →
//! PromoteAck → LeaveReq → LeaveAck` (hot leave, single-leave rekey
//! charged) or a controller-local batch-leave timer that drains the
//! cold aggregate in per-area batches (aggregated rekey charged, one
//! epoch bump per batch — Section III-E's batching at scale).
//!
//! What the aggregate checks and what it does not: membership
//! conservation, epoch monotonicity (the forward-secrecy analog: every
//! departure rotates the key) and byte-exact ledger agreement with an
//! independent closed-form replay are enforced by
//! [`crate::invariants::check_scale`]. Per-member key material,
//! handshake authentication and retransmission behaviour are *not*
//! modelled for cold members — that is what the full protocol tests
//! cover at small scale.

use mykil_baselines::{ColdAreaModel, RekeyTraffic};
use mykil_net::{Context, Duration, Node, NodeId, Simulator};
use std::collections::BTreeSet;

/// Message opcodes (first byte of every scale-harness message).
const OP_JOIN_REQ: u8 = 1;
const OP_JOIN_ACK: u8 = 2;
const OP_DEMOTE_REQ: u8 = 3;
const OP_DEMOTE_ACK: u8 = 4;
const OP_PROMOTE_REQ: u8 = 5;
const OP_PROMOTE_ACK: u8 = 6;
const OP_PROMOTE_NAK: u8 = 7;
const OP_LEAVE_REQ: u8 = 8;
const OP_LEAVE_ACK: u8 = 9;

/// Timer tag for a controller's cold batch-leave sweep.
const TAG_COLD_BATCH: u64 = 1;

fn encode(op: u8, logical: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(9);
    b.push(op);
    b.extend_from_slice(&logical.to_le_bytes());
    b
}

fn decode(bytes: &[u8]) -> Option<(u8, u64)> {
    let (&op, rest) = bytes.split_first()?;
    let logical = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
    Some((op, logical))
}

/// Configuration of one hybrid scale scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Deterministic simulation seed.
    pub seed: u64,
    /// Total logical group size (e.g. 1,000,000).
    pub members: u64,
    /// Number of areas; logical member `m` belongs to area
    /// `m % areas` (the registration server's round-robin policy).
    pub areas: usize,
    /// Live hot-member node slots driving the logical population.
    pub hot_pool: usize,
    /// How many of its logical members each pool node leaves via the
    /// hot promote-then-leave handshake during mass-leave (the rest
    /// drain through the controllers' cold batches).
    pub hot_leaves_per_pool: u64,
    /// Cold members removed per batch-leave timer fire.
    pub cold_batch: u64,
    /// Symmetric key length in bytes (closed-form accounting).
    pub key_len: u64,
    /// RSA modulus length in bytes (closed-form storage accounting).
    pub rsa_len: u64,
    /// Key-tree arity.
    pub arity: u64,
}

impl ScaleConfig {
    /// The acceptance scenario: 1,000,000 members across 1,000 areas.
    pub fn paper_million() -> ScaleConfig {
        ScaleConfig {
            seed: 7,
            members: 1_000_000,
            areas: 1_000,
            hot_pool: 64,
            hot_leaves_per_pool: 2,
            cold_batch: 500,
            key_len: 16,
            rsa_len: 256,
            arity: 2,
        }
    }

    /// CI-sized smoke: 100,000 members across 100 areas.
    pub fn smoke_100k() -> ScaleConfig {
        ScaleConfig {
            members: 100_000,
            areas: 100,
            ..ScaleConfig::paper_million()
        }
    }
}

/// One area's controller: owns the cold aggregate and the hot set.
pub struct ScaleAreaController {
    area: usize,
    cold: ColdAreaModel,
    /// Logical ids currently hot in this area (joined, not yet demoted,
    /// or promoted for a leave).
    hot: BTreeSet<u64>,
    /// Total members ever admitted / departed.
    joins: u64,
    hot_leaves: u64,
    cold_leaves: u64,
    cold_batch: u64,
}

impl ScaleAreaController {
    fn new(area: usize, cfg: &ScaleConfig) -> ScaleAreaController {
        ScaleAreaController {
            area,
            cold: ColdAreaModel::new(cfg.key_len, cfg.rsa_len, cfg.arity),
            hot: BTreeSet::new(),
            joins: 0,
            hot_leaves: 0,
            cold_leaves: 0,
            cold_batch: cfg.cold_batch,
        }
    }

    /// Current area size: cold aggregate plus hot members.
    pub fn live_members(&self) -> u64 {
        self.cold.cold_members() + self.hot.len() as u64
    }

    /// The cold aggregate (inspection).
    pub fn cold(&self) -> &ColdAreaModel {
        &self.cold
    }

    /// Hot members currently in the area.
    pub fn hot_members(&self) -> u64 {
        self.hot.len() as u64
    }

    /// Total admissions so far.
    pub fn joins(&self) -> u64 {
        self.joins
    }

    /// Departures via the hot handshake / via cold batches.
    pub fn hot_leaves(&self) -> u64 {
        self.hot_leaves
    }

    /// Departures drained from the cold aggregate by batch timers.
    pub fn cold_leaves(&self) -> u64 {
        self.cold_leaves
    }

    fn charge(ctx: &mut Context<'_>, t: RekeyTraffic) {
        ctx.stats().bump("scale-rekey-multicast-bytes", t.multicast_bytes);
        ctx.stats().bump("scale-rekey-unicast-bytes", t.unicast_bytes);
        ctx.stats().bump(
            "scale-rekey-messages",
            t.multicast_messages + t.unicast_messages,
        );
    }
}

impl Node for ScaleAreaController {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Some((op, logical)) = decode(bytes) else {
            return;
        };
        match op {
            OP_JOIN_REQ => {
                if self.hot.insert(logical) {
                    self.joins += 1;
                    ctx.stats().bump("scale-joins", 1);
                    let size = self.live_members();
                    let t = self.cold.charge_join_at(size);
                    Self::charge(ctx, t);
                }
                ctx.send(from, "scale-join-ack", encode(OP_JOIN_ACK, logical));
            }
            OP_DEMOTE_REQ => {
                if self.hot.remove(&logical) {
                    self.cold.absorb(1);
                    ctx.stats().bump("scale-demotions", 1);
                }
                ctx.send(from, "scale-demote-ack", encode(OP_DEMOTE_ACK, logical));
            }
            OP_PROMOTE_REQ => {
                if self.cold.release(1) == 1 {
                    self.hot.insert(logical);
                    ctx.stats().bump("scale-promotions", 1);
                    ctx.send(from, "scale-promote-ack", encode(OP_PROMOTE_ACK, logical));
                } else {
                    ctx.send(from, "scale-promote-nak", encode(OP_PROMOTE_NAK, logical));
                }
            }
            OP_LEAVE_REQ => {
                if self.hot.remove(&logical) {
                    self.hot_leaves += 1;
                    ctx.stats().bump("scale-hot-leaves", 1);
                    // Size before the departure: cold + remaining hot
                    // + the leaver itself.
                    let size = self.live_members() + 1;
                    let t = self.cold.charge_single_leave_at(size);
                    Self::charge(ctx, t);
                }
                ctx.send(from, "scale-leave-ack", encode(OP_LEAVE_ACK, logical));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        // mykil-lint: allow(L003) -- u64 timer-kind dispatch, not MAC/digest material
        if tag == TAG_COLD_BATCH {
            let k = self.cold_batch.min(self.cold.cold_members());
            if k > 0 {
                let t = self.cold.batch_leave(k);
                self.cold_leaves += k;
                ctx.stats().bump("scale-cold-leaves", k);
                Self::charge(ctx, t);
            }
            if self.cold.cold_members() > 0 {
                // Drain the rest next tick; the stagger keeps 1,000
                // area timers out of one wheel bucket.
                ctx.set_timer(
                    Duration::from_millis(10 + (self.area % 7) as u64),
                    TAG_COLD_BATCH,
                );
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Driving logical joins (flash crowd).
    Joining,
    /// All assigned logicals demoted; waiting for the next phase.
    Idle,
    /// Driving hot promote-then-leave handshakes.
    Leaving,
}

/// One hot-pool node: performs the membership events of logical members
/// `pool_index, pool_index + P, pool_index + 2P, …` sequentially, so
/// the in-flight hot population never exceeds the pool size.
pub struct PoolMember {
    pool_index: u64,
    pool_size: u64,
    total: u64,
    controllers: Vec<NodeId>,
    current: u64,
    phase: Phase,
    joined: u64,
    hot_leaves_left: u64,
}

impl PoolMember {
    fn controller_of(&self, logical: u64) -> Option<NodeId> {
        let area = (logical % self.controllers.len().max(1) as u64) as usize;
        self.controllers.get(area).copied()
    }

    fn start_join(&mut self, ctx: &mut Context<'_>) {
        if self.current >= self.total {
            self.phase = Phase::Idle;
            return;
        }
        if let Some(ac) = self.controller_of(self.current) {
            ctx.send(ac, "scale-join-req", encode(OP_JOIN_REQ, self.current));
        }
    }

    fn start_promote(&mut self, ctx: &mut Context<'_>) {
        if self.hot_leaves_left == 0 || self.current >= self.total {
            self.phase = Phase::Idle;
            return;
        }
        if let Some(ac) = self.controller_of(self.current) {
            ctx.send(ac, "scale-promote-req", encode(OP_PROMOTE_REQ, self.current));
        }
    }

    /// Logical members this pool node has driven through a full
    /// join-then-demote cycle.
    pub fn joined(&self) -> u64 {
        self.joined
    }

    /// Kicks the mass-leave phase: promote-then-leave the first
    /// `hot_leaves_per_pool` of this node's logical members.
    pub fn begin_leaving(&mut self, ctx: &mut Context<'_>) {
        self.phase = Phase::Leaving;
        self.current = self.pool_index;
        self.start_promote(ctx);
    }
}

impl Node for PoolMember {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.start_join(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Some((op, logical)) = decode(bytes) else {
            return;
        };
        if logical != self.current {
            return; // stale reply from a previous logical member
        }
        match (op, self.phase) {
            (OP_JOIN_ACK, Phase::Joining) => {
                // Hot for exactly the handshake; hand the membership to
                // the cold aggregate immediately.
                ctx.send(from, "scale-demote-req", encode(OP_DEMOTE_REQ, logical));
            }
            (OP_DEMOTE_ACK, Phase::Joining) => {
                self.joined += 1;
                self.current += self.pool_size;
                self.start_join(ctx);
            }
            (OP_PROMOTE_ACK, Phase::Leaving) => {
                ctx.send(from, "scale-leave-req", encode(OP_LEAVE_REQ, logical));
            }
            (OP_PROMOTE_NAK, Phase::Leaving) => {
                // Area already drained cold-side; stop driving leaves.
                self.phase = Phase::Idle;
            }
            (OP_LEAVE_ACK, Phase::Leaving) => {
                self.hot_leaves_left -= 1;
                self.current += self.pool_size;
                self.start_promote(ctx);
            }
            _ => {}
        }
    }
}

/// The hybrid-scale deployment: a simulator holding one controller per
/// area plus the hot pool, with phase drivers and combined-view
/// accessors for the invariant checker.
pub struct ScaleGroup {
    /// The underlying simulator (public like [`crate::group::GroupHandle::sim`]).
    pub sim: Simulator,
    cfg: ScaleConfig,
    controllers: Vec<NodeId>,
    pool: Vec<NodeId>,
    joined_target: u64,
    left_target: u64,
}

impl ScaleGroup {
    /// Builds the deployment; nothing runs until a phase driver is
    /// called.
    pub fn new(cfg: ScaleConfig) -> ScaleGroup {
        let mut sim = Simulator::new(cfg.seed);
        let controllers: Vec<NodeId> = (0..cfg.areas)
            .map(|a| sim.add_node(ScaleAreaController::new(a, &cfg)))
            .collect();
        let pool_size = cfg.hot_pool.max(1) as u64;
        let pool: Vec<NodeId> = (0..pool_size)
            .map(|p| {
                sim.add_node(PoolMember {
                    pool_index: p,
                    pool_size,
                    total: cfg.members,
                    controllers: controllers.clone(),
                    current: p,
                    phase: Phase::Joining,
                    joined: 0,
                    hot_leaves_left: cfg.hot_leaves_per_pool,
                })
            })
            .collect();
        ScaleGroup {
            sim,
            cfg,
            controllers,
            pool,
            joined_target: 0,
            left_target: 0,
        }
    }

    /// The configuration this deployment was built from.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    /// Per-area controllers (inspection).
    pub fn controllers(&self) -> impl Iterator<Item = &ScaleAreaController> {
        self.controllers
            .iter()
            .map(|&id| self.sim.node::<ScaleAreaController>(id))
    }

    /// Drives the flash-crowd join to completion: every logical member
    /// joins hot and demotes cold. Returns `false` if the event budget
    /// ran out first.
    pub fn run_flash_crowd_join(&mut self) -> bool {
        // Each logical member costs four deliveries plus slack.
        let budget = self.cfg.members.saturating_mul(8).max(1_000_000);
        let drained = self.sim.run_until_quiet(budget);
        self.joined_target = self.cfg.members;
        drained
    }

    /// Drives the mass leave: pool members promote-then-leave their
    /// first assigned logicals hot, then every controller drains its
    /// cold aggregate through batch-leave timers.
    pub fn run_mass_leave(&mut self) -> bool {
        for i in 0..self.pool.len() {
            let id = self.pool[i];
            self.sim.invoke(id, |node: &mut PoolMember, ctx| {
                node.begin_leaving(ctx);
            });
        }
        let hot_budget = (self.pool.len() as u64)
            .saturating_mul(self.cfg.hot_leaves_per_pool)
            .saturating_mul(8)
            .max(1_000_000);
        let mut drained = self.sim.run_until_quiet(hot_budget);
        for i in 0..self.controllers.len() {
            let id = self.controllers[i];
            self.sim.invoke(id, |node: &mut ScaleAreaController, ctx| {
                let area = node.area as u64;
                ctx.set_timer(Duration::from_millis(1 + area % 13), TAG_COLD_BATCH);
            });
        }
        let batches = self
            .cfg
            .members
            .div_ceil(self.cfg.cold_batch.max(1))
            .saturating_add(self.cfg.areas as u64);
        drained &= self.sim.run_until_quiet(batches.saturating_mul(4).max(1_000_000));
        self.left_target = self.joined_target;
        drained
    }

    /// Logical members expected to have joined so far.
    pub fn joined_target(&self) -> u64 {
        self.joined_target
    }

    /// Logical members expected to have left so far.
    pub fn left_target(&self) -> u64 {
        self.left_target
    }

    /// Combined live membership across every area (cold + hot).
    pub fn live_members(&self) -> u64 {
        self.controllers().map(|c| c.live_members()).sum()
    }

    /// Total modeled rekey traffic across every area.
    pub fn modeled_traffic(&self) -> RekeyTraffic {
        let mut total = RekeyTraffic::default();
        for c in self.controllers() {
            total += c.cold().traffic();
        }
        total
    }

    /// Closed-form controller storage summed across areas (the paper's
    /// storage axis at the current population).
    pub fn controller_storage_bytes(&self) -> u64 {
        self.controllers()
            .map(|c| c.cold().controller_storage_bytes())
            .sum()
    }
}
