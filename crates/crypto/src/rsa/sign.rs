//! RSASSA signatures: SHA-256 hash-then-sign with PKCS#1 v1.5 layout.
//!
//! Mykil signs key-update multicasts and the registration-server /
//! area-controller handshake messages (`Sig_Prv_rs`, `Sig_Prv_ac` in
//! Figures 3 and 7) with exactly this construction.

use super::{RsaKeyPair, RsaPublicKey};
use crate::bignum::BigUint;
use crate::sha256::{Sha256, DIGEST_LEN};

/// DER prefix of the `DigestInfo` structure for SHA-256
/// (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
    0x05, 0x00, 0x04, 0x20,
];

/// Builds the EMSA-PKCS1-v1_5 encoded message for `digest`.
fn emsa_encode(digest: &[u8; DIGEST_LEN], k: usize) -> Vec<u8> {
    // EM = 0x00 0x01 PS(0xff...) 0x00 DigestInfo digest
    let t_len = SHA256_DIGEST_INFO.len() + DIGEST_LEN;
    debug_assert!(k >= t_len + 11, "modulus too small for signature");
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(digest);
    em
}

impl RsaKeyPair {
    /// Signs `message`, returning a `block_len()`-byte signature.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is too small to hold the encoded digest
    /// (impossible for the ≥256-bit keys [`RsaKeyPair::generate`]
    /// produces).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let digest = Sha256::digest(message);
        let k = self.public().block_len();
        let em = emsa_encode(&digest, k);
        let m_int = BigUint::from_bytes_be(&em);
        let s_int = self
            .raw_private_op(&m_int)
            .expect("encoded message below modulus");
        s_int
            .to_bytes_be_padded(k)
            .expect("signature fits block length")
    }
}

impl RsaPublicKey {
    /// Verifies a signature produced by [`RsaKeyPair::sign`].
    ///
    /// Returns `false` for any malformed, truncated, or forged input;
    /// never panics on attacker-controlled bytes.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        let k = self.block_len();
        if signature.len() != k {
            return false;
        }
        let s_int = BigUint::from_bytes_be(signature);
        let m_int = match self.raw_public_op(&s_int) {
            Ok(m) => m,
            Err(_) => return false,
        };
        let em = match m_int.to_bytes_be_padded(k) {
            Ok(em) => em,
            Err(_) => return false,
        };
        let digest = Sha256::digest(message);
        // Reconstruct the expected encoding and compare in full, which
        // avoids the classic BER-parsing forgery pitfalls.
        crate::ct::ct_eq(&em, &emsa_encode(&digest, k))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_keys::{pair768, pair768_b};
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let pair = pair768();
        let sig = pair.sign(b"key update #42");
        assert_eq!(sig.len(), pair.public().block_len());
        assert!(pair.public().verify(b"key update #42", &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let pair = pair768();
        assert_eq!(pair.sign(b"m"), pair.sign(b"m"));
    }

    #[test]
    fn tampered_message_rejected() {
        let pair = pair768();
        let sig = pair.sign(b"original");
        assert!(!pair.public().verify(b"0riginal", &sig));
        assert!(!pair.public().verify(b"", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let pair = pair768();
        let mut sig = pair.sign(b"msg");
        sig[0] ^= 1;
        assert!(!pair.public().verify(b"msg", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = pair768().sign(b"msg");
        assert!(!pair768_b().public().verify(b"msg", &sig));
    }

    #[test]
    fn garbage_inputs_do_not_panic() {
        let pk = pair768().public();
        assert!(!pk.verify(b"msg", &[]));
        assert!(!pk.verify(b"msg", &[0u8; 5]));
        assert!(!pk.verify(b"msg", &vec![0xffu8; pk.block_len()]));
        assert!(!pk.verify(b"msg", &vec![0u8; pk.block_len() + 1]));
    }

    #[test]
    fn emsa_layout() {
        let digest = Sha256::digest(b"x");
        let em = emsa_encode(&digest, 96);
        assert_eq!(em.len(), 96);
        assert_eq!(&em[..2], &[0x00, 0x01]);
        assert_eq!(em[96 - DIGEST_LEN - SHA256_DIGEST_INFO.len() - 1], 0x00);
        assert_eq!(&em[96 - DIGEST_LEN..], &digest);
    }
}
