//! Minimal byte codec for protocol messages.
//!
//! Every Mykil message is hand-serialized through [`Writer`] and parsed
//! through [`Reader`], so wire sizes are explicit and byte-exact — the
//! bandwidth figures depend on that. No serde: message layouts mirror
//! the fields listed in the paper's Figures 3 and 7.

use crate::error::ProtocolError;

/// Append-only message builder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finishes and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes raw bytes with no length prefix (fixed-size fields).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Writes a `u32` length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.u32(bytes.len() as u32);
        self.raw(bytes)
    }
}

/// Sequential message parser.
///
/// All accessors return [`ProtocolError::Malformed`] on truncation, so
/// attacker-controlled bytes can never panic the node.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Malformed("truncated"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        self.take(n)
    }

    /// Reads a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        self.take(N)?
            .try_into()
            .map_err(|_| ProtocolError::Malformed("bad fixed-size field"))
    }

    /// Reads a `u32`-length-prefixed byte string (capped at 16 MiB to
    /// stop hostile length fields from causing huge allocations).
    pub fn bytes(&mut self) -> Result<&'a [u8], ProtocolError> {
        let len = self.u32()? as usize;
        if len > 16 << 20 {
            return Err(ProtocolError::Malformed("length field too large"));
        }
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(7).u32(0xdead_beef).u64(42).bytes(b"hello").raw(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.raw(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..5]);
        assert!(r.u64().is_err());
        // Length prefix promises more bytes than remain.
        let short = [0u8, 0, 0, 9, 1];
        let mut r = Reader::new(&short);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let _ = r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.u32(1);
        assert_eq!(w.len(), 4);
        w.bytes(b"xy");
        assert_eq!(w.len(), 4 + 4 + 2);
    }

    #[test]
    fn array_reader() {
        let mut w = Writer::new();
        w.raw(&[9u8; 16]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let a: [u8; 16] = r.array().unwrap();
        assert_eq!(a, [9u8; 16]);
        let mut r2 = Reader::new(&buf[..10]);
        assert!(r2.array::<16>().is_err());
    }
}
