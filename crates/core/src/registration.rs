//! The registration server (steps 1–5 of the join protocol, Figure 3).
//!
//! The registration server authenticates prospective members with a
//! challenge–response handshake, checks their authorization information
//! against an [`AuthDb`], assigns them a
//! [`ClientId`] and an area, and introduces them to that area's
//! controller — steps 4 and 5 run back-to-back after the client's
//! step-3 response verifies.

use crate::auth::{AuthDb, AuthDecision};
use crate::config::MykilConfig;
use crate::crypto_cost::CryptoCost;
use crate::directory::{AcDirectory, AcInfo};
use crate::durable::{RsCheckpoint, RsWalRecord};
use crate::error::ProtocolError;
use crate::identity::{AreaId, ClientId};
use crate::msg::Msg;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope::HybridCiphertext;
use mykil_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use mykil_net::{Context, Node, NodeId, Time};
use rand::RngCore;
use std::collections::BTreeMap;

/// A join handshake in flight at the registration server.
#[derive(Debug)]
struct PendingJoin {
    client_pub: RsaPublicKey,
    nonce_wc: u64,
    granted: mykil_net::Duration,
    started: Time,
}

/// Counters exposed for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistrationStats {
    /// Join handshakes completed (through step 5).
    pub joins_completed: u64,
    /// Authorization rejections at step 1.
    pub denied: u64,
    /// Messages that failed to decrypt or verify.
    pub rejected_messages: u64,
}

/// The registration server node.
pub struct RegistrationServer {
    cfg: MykilConfig,
    cost: CryptoCost,
    keypair: RsaKeyPair,
    auth: Box<dyn AuthDb>,
    directory: AcDirectory,
    /// The directory as deployed — what a crashed server reads back
    /// from its configuration before recovery replays takeovers on top.
    directory_initial: AcDirectory,
    pending: BTreeMap<NodeId, PendingJoin>,
    /// Handshakes lost to the last crash, reported at restart.
    wiped_pending: u64,
    next_client: u64,
    next_area: usize,
    /// Backup-controller public keys per area, for takeover validation.
    backup_keys: BTreeMap<AreaId, RsaPublicKey>,
    /// Counters exposed for tests and reports.
    pub stats: RegistrationStats,
}

impl std::fmt::Debug for RegistrationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistrationServer")
            .field("areas", &self.directory.entries.len())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl RegistrationServer {
    /// Creates a registration server with a pre-generated key pair, an
    /// authorization backend, and the AC directory.
    pub fn new(
        cfg: MykilConfig,
        cost: CryptoCost,
        keypair: RsaKeyPair,
        auth: Box<dyn AuthDb>,
        directory: AcDirectory,
    ) -> Self {
        RegistrationServer {
            cfg,
            cost,
            keypair,
            auth,
            directory_initial: directory.clone(),
            directory,
            pending: BTreeMap::new(),
            wiped_pending: 0,
            next_client: 1,
            next_area: 0,
            backup_keys: BTreeMap::new(),
            stats: RegistrationStats::default(),
        }
    }

    /// Registers the backup controller key for an area so a takeover
    /// announcement from it will be accepted.
    pub fn register_backup(&mut self, area: AreaId, key: RsaPublicKey) {
        self.backup_keys.insert(area, key);
    }

    /// The server's public key (well known, per the paper's assumption).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// Current directory (tests inspect takeover updates).
    pub fn directory(&self) -> &AcDirectory {
        &self.directory
    }

    /// Next client id to be handed out (durability invariant checks).
    pub fn next_client(&self) -> u64 {
        self.next_client
    }

    /// Writes the full-state checkpoint (id allocators + directory).
    fn persist_checkpoint(&mut self, ctx: &mut Context<'_>) {
        let bytes = RsCheckpoint {
            next_client: self.next_client,
            next_area: self.next_area as u64,
            directory: self.directory.clone(),
        }
        .to_bytes();
        ctx.storage().checkpoint(bytes);
    }

    /// Chooses an area for a new member. The paper allows proximity or
    /// load-based policies; round-robin stands in for load balancing.
    fn pick_area(&mut self) -> Option<AcInfo> {
        if self.directory.entries.is_empty() {
            return None;
        }
        let info = self.directory.entries[self.next_area % self.directory.entries.len()].clone();
        self.next_area += 1;
        Some(info)
    }

    fn handle_join1(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        // Decrypt {auth_info, Pub_k, Nonce_CW} (one private op).
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Ok(hc) = HybridCiphertext::from_bytes(ct) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let Ok(plain) = hc.decrypt(&self.keypair) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let parsed = (|| -> Result<_, ProtocolError> {
            let mut r = Reader::new(&plain);
            let auth_info = r.bytes()?.to_vec();
            let pubkey = r.bytes()?.to_vec();
            let nonce_cw = r.u64()?;
            r.finish()?;
            Ok((auth_info, pubkey, nonce_cw))
        })();
        let Ok((auth_info, pubkey, nonce_cw)) = parsed else {
            self.stats.rejected_messages += 1;
            return;
        };
        let Ok(client_pub) = RsaPublicKey::from_bytes(&pubkey) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let granted = match self.auth.authorize(&auth_info) {
            AuthDecision::Granted { duration } => duration,
            AuthDecision::Denied => {
                self.stats.denied += 1;
                return;
            }
        };
        // Step 2: {Nonce_CW+1, Nonce_WC} to the client.
        let nonce_wc = ctx.rng().next_u64();
        let mut w = Writer::new();
        w.u64(nonce_cw.wrapping_add(1)).u64(nonce_wc);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(reply) = HybridCiphertext::encrypt(&client_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        self.pending.insert(
            from,
            PendingJoin {
                client_pub,
                nonce_wc,
                granted,
                started: ctx.now(),
            },
        );
        ctx.send(from, "join", Msg::Join2 { ct: reply.to_bytes() }.to_bytes());
    }

    fn handle_join3(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        let Some(pending) = self.pending.remove(&from) else {
            self.stats.rejected_messages += 1;
            return;
        };
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let ok = HybridCiphertext::from_bytes(ct)
            .and_then(|hc| hc.decrypt(&self.keypair))
            .ok()
            .and_then(|plain| {
                let mut r = Reader::new(&plain);
                let v = r.u64().ok()?;
                r.finish().ok()?;
                Some(v)
            })
            .map(|v| v == pending.nonce_wc.wrapping_add(1))
            .unwrap_or(false);
        if !ok {
            self.stats.rejected_messages += 1;
            return;
        }

        // Client is authenticated and authorized. Assign identity/area.
        let client = ClientId(self.next_client);
        self.next_client += 1;
        // The id is burned durably before any reply: a recovered RS
        // must never hand the same id to a second client.
        ctx.storage()
            .wal_commit(RsWalRecord::ClientAssigned { client: client.0 }.to_bytes());
        let Some(ac) = self.pick_area() else {
            return;
        };
        let Ok(ac_pub) = RsaPublicKey::from_bytes(&ac.pubkey) else {
            return;
        };
        let nonce_ac = ctx.rng().next_u64();
        let now_us = ctx.now().as_micros();

        // Step 4 → AC: {Nonce_AC, K_id, ts, Pub_k, membership duration},
        // encrypted to the AC and signed by the RS.
        let mut w = Writer::new();
        w.u64(nonce_ac)
            .u64(client.0)
            .u64(now_us)
            .bytes(&pending.client_pub.to_bytes())
            .u64(pending.granted.as_micros());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct4) = HybridCiphertext::encrypt(&ac_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        let ct4 = ct4.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig4 = self.keypair.sign(&ct4);
        ctx.send(
            NodeId::from_index(ac.node as usize),
            "join",
            Msg::Join4 { ct: ct4, sig: sig4 }.to_bytes(),
        );

        // Step 5 → client: {Nonce_AC+1, area, AC address+key, directory},
        // encrypted to the client and signed by the RS.
        let mut w = Writer::new();
        w.u64(nonce_ac.wrapping_add(1))
            .u32(ac.area.0)
            .u32(ac.node)
            .bytes(&ac.pubkey);
        self.directory.write(&mut w);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct5) = HybridCiphertext::encrypt(&pending.client_pub, &w.into_bytes(), ctx.rng())
        else {
            return;
        };
        let ct5 = ct5.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig5 = self.keypair.sign(&ct5);
        ctx.send(from, "join", Msg::Join5 { ct: ct5, sig: sig5 }.to_bytes());

        self.stats.joins_completed += 1;
        let _ = pending.started; // reserved for latency metrics
        ctx.stats().bump("rs-joins", 1);
    }

    fn handle_takeover(
        &mut self,
        ctx: &mut Context<'_>,
        area: AreaId,
        sig: &[u8],
        pubkey: &[u8],
        from: NodeId,
    ) {
        // The backup signs the area id with its own key; the RS trusts
        // the key it was configured with at deployment (the directory
        // carries primary keys, so the builder registers backup keys via
        // `register_backup`).
        let Some(expected) = self.backup_keys.get(&area) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let Ok(pk) = RsaPublicKey::from_bytes(pubkey) else {
            self.stats.rejected_messages += 1;
            return;
        };
        if pk != *expected {
            self.stats.rejected_messages += 1;
            return;
        }
        let mut w = Writer::new();
        w.u32(area.0);
        if !pk.verify(&w.into_bytes(), sig) {
            self.stats.rejected_messages += 1;
            return;
        }
        self.directory.upsert(AcInfo {
            area,
            node: from.index() as u32,
            pubkey: pubkey.to_vec(),
        });
        // The directory update must survive a crash — a recovered RS
        // pointing joins at a demoted primary would strand every new
        // client in that area. WAL + immediate compaction (takeovers
        // are rare; the checkpoint keeps recovery cheap).
        ctx.storage().wal_commit(
            RsWalRecord::DirectoryUpsert {
                area: area.0,
                node: from.index() as u32,
                pubkey: pubkey.to_vec(),
            }
            .to_bytes(),
        );
        self.persist_checkpoint(ctx);
    }
}

impl Node for RegistrationServer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Baseline checkpoint so a crash at any point finds durable
        // allocator state.
        self.persist_checkpoint(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Ok(msg) = Msg::from_bytes(bytes) else {
            self.stats.rejected_messages += 1;
            return;
        };
        match msg {
            Msg::Join1 { ct } => self.handle_join1(ctx, from, &ct),
            Msg::Join3 { ct } => self.handle_join3(ctx, from, &ct),
            Msg::Takeover { area, sig, pubkey } => {
                self.handle_takeover(ctx, area, &sig, &pubkey, from)
            }
            // Everything else belongs to ACs, members, or replicas; the
            // RS counts it as rejected (listed explicitly so a new wire
            // message fails to compile until triaged here).
            Msg::Join2 { .. }
            | Msg::Join4 { .. }
            | Msg::Join5 { .. }
            | Msg::Join6 { .. }
            | Msg::Join7 { .. }
            | Msg::Rejoin1 { .. }
            | Msg::Rejoin2 { .. }
            | Msg::Rejoin3 { .. }
            | Msg::Rejoin4 { .. }
            | Msg::Rejoin5 { .. }
            | Msg::Rejoin6 { .. }
            | Msg::RejoinDenied { .. }
            | Msg::AreaJoinReq { .. }
            | Msg::AreaJoinAck { .. }
            | Msg::KeyUpdate { .. }
            | Msg::KeyUnicast { .. }
            | Msg::KeyRefreshRequest { .. }
            | Msg::LeaveRequest { .. }
            | Msg::Data { .. }
            | Msg::AcAlive { .. }
            | Msg::MemberAlive { .. }
            | Msg::Heartbeat { .. }
            | Msg::HeartbeatAck { .. }
            | Msg::StateSync { .. }
            | Msg::Demote { .. } => {
                self.stats.rejected_messages += 1;
            }
        }
    }

    fn on_crashed_volatile_reset(&mut self) {
        // Handshakes in flight die with the process; surfacing that
        // honestly (instead of resuming with half-valid nonce state)
        // lets clients time out, retry step 1, and complete against the
        // fresh table.
        self.wiped_pending = self.pending.len() as u64;
        self.pending.clear();
        self.directory = self.directory_initial.clone();
        self.next_client = 1;
        self.next_area = 0;
    }

    fn on_restarted(&mut self, ctx: &mut Context<'_>) {
        ctx.stats().bump("rs-restarts", 1);
        if self.wiped_pending > 0 {
            ctx.stats().bump("rs-pending-dropped", self.wiped_pending);
            self.wiped_pending = 0;
        }
        // Rebuild the id allocators and the takeover-updated directory
        // from stable storage.
        let rec = ctx.storage().load();
        let mut applied = false;
        if let Some((_seq, bytes)) = rec.checkpoint {
            if let Some(cp) = RsCheckpoint::from_bytes(&bytes) {
                self.next_client = cp.next_client;
                self.next_area = cp.next_area as usize;
                self.directory = cp.directory;
                applied = true;
            } else {
                ctx.stats().bump("rs-recovery-bad-checkpoint", 1);
            }
        }
        for raw in &rec.wal {
            let Some(rec) = RsWalRecord::from_bytes(raw) else {
                ctx.stats().bump("rs-recovery-bad-wal-record", 1);
                break;
            };
            match rec {
                RsWalRecord::ClientAssigned { client } => {
                    self.next_client = self.next_client.max(client + 1);
                }
                RsWalRecord::DirectoryUpsert { area, node, pubkey } => {
                    self.directory.upsert(AcInfo {
                        area: AreaId(area),
                        node,
                        pubkey,
                    });
                }
            }
            applied = true;
        }
        if applied {
            ctx.stats().bump("rs-recoveries", 1);
        }
        // Compact the replayed WAL into a fresh checkpoint.
        self.persist_checkpoint(ctx);
    }
}
