//! Figure 10: aggregated vs sequential rekeying for ten consecutive
//! leave events (Section III-E batching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mykil_crypto::drbg::Drbg;
use mykil_tree::{KeyTree, MemberId, TreeConfig};

const AREA: u64 = 5_000;
const K: usize = 10;

fn setup() -> (KeyTree, Vec<MemberId>, Drbg) {
    let mut rng = Drbg::from_seed(10);
    let mut tree = KeyTree::new(TreeConfig::binary(), &mut rng);
    for m in 0..AREA {
        tree.join(MemberId(m), &mut rng).unwrap();
    }
    let stride = AREA as usize / K;
    let victims: Vec<MemberId> = (0..K).map(|i| MemberId((i * stride) as u64)).collect();
    (tree, victims, rng)
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_ten_leaves");
    let (tree, victims, mut rng) = setup();

    group.bench_with_input(
        BenchmarkId::new("aggregated_batch", K),
        &K,
        |b, _| {
            b.iter(|| {
                let mut t = tree.clone();
                let out = t.batch_leave(&victims, &mut rng).unwrap();
                std::hint::black_box(out.plan.multicast_bytes())
            });
        },
    );

    group.bench_with_input(
        BenchmarkId::new("sequential_leaves", K),
        &K,
        |b, _| {
            b.iter(|| {
                let mut t = tree.clone();
                let mut bytes = 0usize;
                for &v in &victims {
                    bytes += t.leave(v, &mut rng).unwrap().multicast_bytes();
                }
                std::hint::black_box(bytes)
            });
        },
    );

    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
