//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = TestRng::from_seed(3);
        let s = vec(any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn nested_vecs_work() {
        let mut rng = TestRng::from_seed(4);
        let s = vec(vec(any::<u8>(), 0..3), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
    }
}
