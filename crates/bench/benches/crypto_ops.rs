//! Wall-clock cost of the cryptographic primitives underlying the
//! protocol (the real-hardware analogue of the paper's OpenSSL layer).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mykil_crypto::drbg::Drbg;
use mykil_crypto::envelope;
use mykil_crypto::hmac::hmac_sha256;
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::rsa::RsaKeyPair;
use mykil_crypto::sha256::Sha256;

fn bench_rsa(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(1);
    // The paper's key size. Generated once (keygen itself is seconds).
    let pair = RsaKeyPair::generate(2048, &mut rng).unwrap();
    let msg = [0x42u8; 64];
    let ct = pair.public().encrypt(&msg, &mut rng).unwrap();
    let sig = pair.sign(&msg);

    let mut g = c.benchmark_group("rsa2048");
    g.sample_size(20);
    g.bench_function("encrypt", |b| {
        b.iter(|| pair.public().encrypt(&msg, &mut rng).unwrap())
    });
    g.bench_function("decrypt", |b| b.iter(|| pair.decrypt(&ct).unwrap()));
    g.bench_function("sign", |b| b.iter(|| pair.sign(&msg)));
    g.bench_function("verify", |b| b.iter(|| pair.public().verify(&msg, &sig)));
    g.finish();
}

fn bench_symmetric(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(2);
    let key = SymmetricKey::from_label("bench");
    let payload = vec![0u8; 4096];
    let sealed = envelope::seal(&key, &payload, &mut rng);

    let mut g = c.benchmark_group("symmetric");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("envelope_seal_4k", |b| {
        b.iter(|| envelope::seal(&key, &payload, &mut rng))
    });
    g.bench_function("envelope_open_4k", |b| {
        b.iter(|| envelope::open(&key, &sealed).unwrap())
    });
    g.bench_function("sha256_4k", |b| b.iter(|| Sha256::digest(&payload)));
    g.bench_function("hmac_4k", |b| b.iter(|| hmac_sha256(key.as_bytes(), &payload)));
    g.finish();
}

criterion_group!(benches, bench_rsa, bench_symmetric);
criterion_main!(benches);
