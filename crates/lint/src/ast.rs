//! A lightweight syntax layer over the token stream.
//!
//! The build environment is offline, so a real `syn` dependency is not
//! available; this module implements the slice of Rust syntax the
//! dataflow rules (L006–L010) need, directly over [`crate::tokenizer`]
//! tokens:
//!
//! - **items**: every `fn` definition with its name, signature span and
//!   body span (nested functions become their own items and are carved
//!   out of the parent's body);
//! - **events**: an in-order stream per function body of calls, method
//!   calls, `for` loops, `as` casts and index expressions, each with its
//!   argument/receiver token spans — enough for call-order dataflow
//!   over a statement list;
//! - **typed declarations**: `name: Type` bindings (struct fields,
//!   `let` annotations, fn params) plus `let name = Type::new()`
//!   inits, so rules can resolve a receiver chain like
//!   `self.members.iter()` to the declared collection type.
//!
//! It is deliberately *not* a full Rust parser: macros are treated as
//! opaque call events, types inside generics are only scanned for the
//! heads the rules care about, and expression nesting is approximated
//! by bracket depth. Every approximation is pinned by the fixture
//! suite in `tests/fixtures_ast.rs`.

use crate::tokenizer::{Token, TokenKind};
use std::ops::Range;

/// Keywords that look like identifiers but never start a call or name a
/// receiver.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

/// Whether `tok` is an identifier that is not a Rust keyword.
fn is_name(tok: &Token) -> bool {
    tok.kind == TokenKind::Ident && !KEYWORDS.contains(&tok.text.as_str())
}

/// One syntactic event inside a function body, in source order.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// Free or path call `foo(…)` / `a::b::foo(…)`. `path` holds the
    /// segments in order; the last one is the callee.
    Call { path: Vec<String> },
    /// Method call `recv.foo(…)` (turbofish included). `recv` spans the
    /// receiver chain's tokens.
    MethodCall { method: String, recv: Range<usize> },
    /// `for pat in ITER { … }`; `iter` spans the iterated expression.
    ForLoop { iter: Range<usize> },
    /// `expr as TARGET`; `target` is the first type ident after `as`.
    Cast { target: String },
    /// `expr[…]` index expression; `base` spans the indexed chain.
    Index { base: Range<usize> },
}

/// An event with its location.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the event's anchor (callee / `for` / `as` / `[`).
    pub tok: usize,
    /// Argument tokens: call args, index expression, or empty.
    pub args: Range<usize>,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, inside (excluding) the braces.
    pub body: Range<usize>,
    /// Events in the body, source order, nested fn items excluded.
    pub events: Vec<Event>,
}

/// A `name: TypeHead<…>` (or `let name = TypeHead::new()`) binding.
#[derive(Debug)]
pub struct TypedDecl {
    pub name: String,
    /// The interesting head of the type path, e.g. `HashMap`.
    pub ty_head: String,
    pub line: u32,
    /// Token index of the type head (for test-region masking).
    pub tok: usize,
}

/// Parsed view of one file.
#[derive(Debug, Default)]
pub struct Ast {
    pub fns: Vec<FnDef>,
    pub decls: Vec<TypedDecl>,
}

/// Type heads the declaration scan records. Hash collections feed
/// L006; their ordered counterparts are recorded so rules (and tests)
/// can see the sanctioned migration target.
const DECL_TYPE_HEADS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Parses a scanned file into functions, events and declarations.
pub fn parse(tokens: &[Token]) -> Ast {
    let mut ast = Ast::default();
    collect_fns(tokens, 0..tokens.len(), &mut ast.fns);
    collect_typed_decls(tokens, &mut ast.decls);
    ast
}

/// Finds every `fn` definition in `range` (recursing into bodies for
/// nested items) and extracts its event stream.
fn collect_fns(tokens: &[Token], range: Range<usize>, out: &mut Vec<FnDef>) {
    let mut i = range.start;
    while i < range.end {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(is_name) {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            if let Some(body) = fn_body_range(tokens, i, range.end) {
                let mut events = Vec::new();
                collect_events(tokens, body.clone(), &mut events);
                collect_fns(tokens, body.clone(), out);
                let end = body.end + 1; // past the closing brace
                out.push(FnDef {
                    name,
                    line,
                    body,
                    events,
                });
                i = end;
                continue;
            }
        }
        i += 1;
    }
    // Keep source order: nested fns were pushed before their parents.
    out.sort_by_key(|f| f.body.start);
}

/// From the `fn` keyword at `i`, finds the body token range (inside the
/// braces). Returns `None` for bodyless trait-method declarations.
fn fn_body_range(tokens: &[Token], i: usize, limit: usize) -> Option<Range<usize>> {
    let mut j = i + 1;
    let mut depth = 0i32; // (), [], <> are all irrelevant to `{` at depth 0
    while j < limit {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            let body_start = j + 1;
            let mut b = 1i32;
            let mut k = body_start;
            while k < limit && b > 0 {
                if tokens[k].is_punct('{') {
                    b += 1;
                } else if tokens[k].is_punct('}') {
                    b -= 1;
                }
                if b == 0 {
                    break;
                }
                k += 1;
            }
            return Some(body_start..k);
        } else if t.is_punct(';') && depth == 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// Extracts the in-order event stream for `range`, skipping nested `fn`
/// items (they get their own [`FnDef`]).
fn collect_events(tokens: &[Token], range: Range<usize>, out: &mut Vec<Event>) {
    let mut i = range.start;
    while i < range.end {
        let tok = &tokens[i];

        // Skip nested fn items entirely.
        if tok.is_ident("fn") && tokens.get(i + 1).is_some_and(is_name) {
            if let Some(body) = fn_body_range(tokens, i, range.end) {
                i = body.end + 1;
                continue;
            }
        }

        // `for pat in iter { … }` — require an `in` before the block so
        // HRTB `for<'a>` and stray identifiers don't match.
        if tok.is_ident("for") {
            if let Some((iter, _body_open)) = for_loop_header(tokens, i, range.end) {
                out.push(Event {
                    kind: EventKind::ForLoop { iter },
                    line: tok.line,
                    tok: i,
                    args: 0..0,
                });
                // Fall through token by token: calls in the header
                // (`for x in m.iter()`) and in the body are events too.
                i += 1;
                continue;
            }
        }

        // `expr as Type` — not the `use … as …` rename form.
        if tok.is_ident("as") && !statement_starts_with_use(tokens, range.start, i) {
            if let Some(target) = cast_target(tokens, i + 1, range.end) {
                out.push(Event {
                    kind: EventKind::Cast { target },
                    line: tok.line,
                    tok: i,
                    args: 0..0,
                });
            }
            i += 1;
            continue;
        }

        // Calls: `name(…)`, `a::b::name(…)`, `recv.name(…)`,
        // `recv.name::<T>(…)`, and macro invocations `name!(…)`.
        if is_name(tok) {
            if let Some((args_open, _turbofish)) = call_paren_after(tokens, i, range.end) {
                let args = paren_args_range(tokens, args_open, range.end);
                let line = tok.line;
                if i > range.start && tokens[i - 1].is_punct('.') {
                    let recv = receiver_chain(tokens, i - 1, range.start);
                    out.push(Event {
                        kind: EventKind::MethodCall {
                            method: tok.text.clone(),
                            recv,
                        },
                        line,
                        tok: i,
                        args,
                    });
                } else {
                    let path = path_segments_ending_at(tokens, i, range.start);
                    out.push(Event {
                        kind: EventKind::Call { path },
                        line,
                        tok: i,
                        args,
                    });
                }
                i += 1;
                continue;
            }
        }

        // Indexing: `[` whose previous token ends an expression.
        if tok.is_punct('[') && i > range.start {
            let prev = &tokens[i - 1];
            let indexes = is_name(prev)
                || prev.is_punct(')')
                || prev.is_punct(']')
                || prev.is_punct('?')
                || prev.kind == TokenKind::Literal;
            // `name![…]` is a macro, not an index.
            let macro_bang = i >= 2 && tokens[i - 1].is_punct('!');
            if indexes && !macro_bang {
                let base = receiver_chain(tokens, i, range.start);
                let args = bracket_args_range(tokens, i, range.end);
                out.push(Event {
                    kind: EventKind::Index { base },
                    line: tok.line,
                    tok: i,
                    args,
                });
            }
        }
        i += 1;
    }
}

/// For the `for` at `i`, returns (iter expression range, index of the
/// body `{`) if this is a loop header.
fn for_loop_header(tokens: &[Token], i: usize, limit: usize) -> Option<(Range<usize>, usize)> {
    let mut j = i + 1;
    let mut depth = 0i32;
    // Find `in` at depth 0 (the pattern may contain tuples/parens).
    let in_idx = loop {
        let t = tokens.get(j)?;
        if j >= limit {
            return None;
        }
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_ident("in") && depth == 0 {
            break j;
        } else if (t.is_punct(';') || t.is_punct('{')) && depth == 0 {
            return None; // `for<'a>` bound or something stranger
        }
        j += 1;
    };
    // Find the body `{` at depth 0 after `in`.
    let mut k = in_idx + 1;
    let mut depth = 0i32;
    while k < limit {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return Some((in_idx + 1..k, k));
        } else if t.is_punct(';') && depth == 0 {
            return None;
        }
        k += 1;
    }
    None
}

/// Whether the statement containing token `i` starts with `use`.
fn statement_starts_with_use(tokens: &[Token], start: usize, i: usize) -> bool {
    let mut j = i;
    while j > start {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return tokens.get(j + 1).is_some_and(|t| t.is_ident("use"));
        }
    }
    tokens.get(start).is_some_and(|t| t.is_ident("use"))
}

/// First type ident after an `as` keyword, skipping `&`, `*`, `mut`,
/// `const`, `dyn`.
fn cast_target(tokens: &[Token], mut j: usize, limit: usize) -> Option<String> {
    while j < limit {
        let t = &tokens[j];
        if t.is_punct('&') || t.is_punct('*') || t.is_ident("mut") || t.is_ident("dyn") {
            j += 1;
            continue;
        }
        if t.is_ident("const") {
            // `as *const T`: report the pointee head.
            j += 1;
            continue;
        }
        return (t.kind == TokenKind::Ident).then(|| t.text.clone());
    }
    None
}

/// If the name at `i` heads a call, returns the index of its opening
/// `(` and whether a turbofish was skipped. Handles `name(`,
/// `name::<T>(`, and treats `name!(…)` macros as calls too.
fn call_paren_after(tokens: &[Token], i: usize, limit: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1; // macro bang
        return tokens
            .get(j)
            .filter(|t| t.is_punct('(') && j < limit)
            .map(|_| (j, false));
    }
    // Turbofish `::<…>`.
    if tokens.get(j).is_some_and(|t| t.is_punct(':'))
        && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 1i32;
        j += 3;
        while j < limit && depth > 0 {
            if tokens[j].is_punct('<') {
                depth += 1;
            } else if tokens[j].is_punct('>') {
                depth -= 1;
            }
            j += 1;
        }
        return tokens
            .get(j)
            .filter(|t| t.is_punct('(') && j < limit)
            .map(|_| (j, true));
    }
    tokens
        .get(j)
        .filter(|t| t.is_punct('(') && j < limit)
        .map(|_| (j, false))
}

/// Token range inside the parens opening at `open`.
fn paren_args_range(tokens: &[Token], open: usize, limit: usize) -> Range<usize> {
    let mut depth = 1i32;
    let mut j = open + 1;
    while j < limit && depth > 0 {
        if tokens[j].is_punct('(') {
            depth += 1;
        } else if tokens[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return open + 1..j;
            }
        }
        j += 1;
    }
    open + 1..j
}

/// Token range inside the brackets opening at `open`.
fn bracket_args_range(tokens: &[Token], open: usize, limit: usize) -> Range<usize> {
    let mut depth = 1i32;
    let mut j = open + 1;
    while j < limit && depth > 0 {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return open + 1..j;
            }
        }
        j += 1;
    }
    open + 1..j
}

/// Walks a receiver chain backwards from the `.` (or `[`) at `end`:
/// consumes idents, tuple-field literals, `)`/`]` groups and the `.` /
/// `::` connecting them. Returns the chain's token range.
fn receiver_chain(tokens: &[Token], end: usize, start: usize) -> Range<usize> {
    let mut j = end; // exclusive end of chain
    loop {
        if j == start {
            break;
        }
        let t = &tokens[j - 1];
        if t.is_punct(')') || t.is_punct(']') {
            // Skip the bracketed group.
            let close = if t.is_punct(')') { ')' } else { ']' };
            let open = if close == ')' { '(' } else { '[' };
            let mut depth = 1i32;
            let mut k = j - 1;
            while k > start && depth > 0 {
                k -= 1;
                if tokens[k].is_punct(close) {
                    depth += 1;
                } else if tokens[k].is_punct(open) {
                    depth -= 1;
                }
            }
            j = k;
            // A call's name precedes its parens.
            if j > start && is_name(&tokens[j - 1]) {
                j -= 1;
            }
        } else if is_name(t) || t.kind == TokenKind::Literal || t.is_ident("self") {
            j -= 1;
        } else {
            break;
        }
        // Continue over a connecting `.` or `::`.
        if j > start && tokens[j - 1].is_punct('.') {
            j -= 1;
        } else if j > start + 1 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
            j -= 2;
        } else {
            break;
        }
    }
    j..end
}

/// Collects the `::`-separated path ending at the name at `i`.
fn path_segments_ending_at(tokens: &[Token], i: usize, start: usize) -> Vec<String> {
    let mut segs = vec![tokens[i].text.clone()];
    let mut j = i;
    while j > start + 1
        && tokens[j - 1].is_punct(':')
        && tokens[j - 2].is_punct(':')
        && j >= 3
        && tokens[j - 3].kind == TokenKind::Ident
    {
        segs.push(tokens[j - 3].text.clone());
        j -= 3;
    }
    segs.reverse();
    segs
}

/// Scans for `name: TypeHead<…>` declarations (fields, lets, params)
/// and `let name = TypeHead::new()` inits, for the heads the rules
/// track.
fn collect_typed_decls(tokens: &[Token], out: &mut Vec<TypedDecl>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !DECL_TYPE_HEADS.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over a path prefix `std :: collections ::`.
        let mut j = i;
        while j >= 3
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
            && tokens[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        // `name : <path> TypeHead`
        if j >= 2 && tokens[j - 1].is_punct(':') && !tokens.get(j.wrapping_sub(2)).is_some_and(|x| x.is_punct(':'))
        {
            if let Some(name) = tokens.get(j - 2).filter(|t| is_name(t)) {
                out.push(TypedDecl {
                    name: name.text.clone(),
                    ty_head: t.text.clone(),
                    line: t.line,
                    tok: i,
                });
                continue;
            }
        }
        // `let [mut] name = <path> TypeHead :: new ( … )`
        if j >= 2 && tokens[j - 1].is_punct('=') {
            let mut k = j - 1;
            if k >= 1 {
                k -= 1; // the name
                if is_name(&tokens[k]) {
                    let name = tokens[k].text.clone();
                    let is_let = (k >= 1 && tokens[k - 1].is_ident("let"))
                        || (k >= 2 && tokens[k - 1].is_ident("mut") && tokens[k - 2].is_ident("let"));
                    if is_let {
                        out.push(TypedDecl {
                            name,
                            ty_head: t.text.clone(),
                            line: t.line,
                            tok: i,
                        });
                    }
                }
            }
        }
    }
}

/// The last plain name in a token range — used to resolve which binding
/// a receiver chain like `self.members` or `&mut known` refers to.
/// Returns `None` if the range ends in something unresolvable (a call,
/// a literal, …).
pub fn last_name_in(tokens: &[Token], range: &Range<usize>) -> Option<String> {
    let mut last = None;
    let mut i = range.start;
    while i < range.end {
        let t = &tokens[i];
        if is_name(t) || t.is_ident("self") {
            // A name followed by `(` is a call, which we cannot resolve.
            if tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                last = None;
            } else {
                last = Some(t.text.clone());
            }
        }
        i += 1;
    }
    last.filter(|n| n != "self")
}

/// Splits a call's argument token range at depth-0 commas.
pub fn split_args(tokens: &[Token], args: &Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = args.start;
    for i in args.clone() {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            out.push(cur..i);
            cur = i + 1;
        }
    }
    if cur < args.end {
        out.push(cur..args.end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::scan;

    fn parse_src(src: &str) -> (Vec<Token>, Ast) {
        let scanned = scan(src);
        let ast = parse(&scanned.tokens);
        (scanned.tokens, ast)
    }

    #[test]
    fn fn_items_with_bodies() {
        let src = "fn a() { x(); }\nimpl T { fn b(&self) -> u8 { 0 } }\ntrait Q { fn decl(&self); }\n";
        let (_, ast) = parse_src(src);
        let names: Vec<_> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn nested_fn_gets_own_item_and_is_excluded_from_parent() {
        let src = "fn outer() { before(); fn inner() { hidden(); } after(); }";
        let (_, ast) = parse_src(src);
        let outer = ast.fns.iter().find(|f| f.name == "outer").unwrap();
        let calls: Vec<_> = outer
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call { path } => Some(path.last().unwrap().clone()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["before", "after"]);
        assert!(ast.fns.iter().any(|f| f.name == "inner"));
    }

    #[test]
    fn method_calls_and_receivers() {
        let src = "fn f() { self.members.iter(); list.len(); }";
        let (tokens, ast) = parse_src(src);
        let f = &ast.fns[0];
        let mut methods = Vec::new();
        for e in &f.events {
            if let EventKind::MethodCall { method, recv } = &e.kind {
                methods.push((method.clone(), last_name_in(&tokens, recv)));
            }
        }
        assert_eq!(
            methods,
            vec![
                ("iter".to_string(), Some("members".to_string())),
                ("len".to_string(), Some("list".to_string()))
            ]
        );
    }

    #[test]
    fn turbofish_method_call() {
        let src = "fn f() { xs.collect::<Vec<u8>>(); }";
        let (_, ast) = parse_src(src);
        assert!(ast.fns[0]
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::MethodCall { method, .. } if method == "collect")));
    }

    #[test]
    fn for_loop_iter_range() {
        let src = "fn f() { for (k, v) in &self.members { use_it(k, v); } }";
        let (tokens, ast) = parse_src(src);
        let f = &ast.fns[0];
        let iter = f
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::ForLoop { iter } => Some(iter.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_name_in(&tokens, &iter), Some("members".to_string()));
        // The loop body's call is still seen.
        assert!(f
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Call { path } if path.last().unwrap() == "use_it")));
    }

    #[test]
    fn casts_found_but_use_renames_ignored() {
        let src = "use std::x as y;\nfn f(n: usize) { let a = n as u32; let b = n as u64; }";
        let (_, ast) = parse_src(src);
        let targets: Vec<_> = ast.fns[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Cast { target } => Some(target.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec!["u32", "u64"]);
    }

    #[test]
    fn use_rename_inside_fn_body_ignored() {
        let src = "fn f() { use std::collections::HashMap as Map; g(); }";
        let (_, ast) = parse_src(src);
        assert!(!ast.fns[0]
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Cast { .. })));
    }

    #[test]
    fn index_vs_array_literal_vs_macro() {
        let src = "fn f(xs: &[u8]) { let a = xs[0]; let b = [0u8; 4]; let v = vec![1, 2]; }";
        let (tokens, ast) = parse_src(src);
        let indexes: Vec<_> = ast.fns[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Index { base } => last_name_in(&tokens, base),
                _ => None,
            })
            .collect();
        assert_eq!(indexes, vec!["xs".to_string()]);
    }

    #[test]
    fn index_on_call_result_and_tuple_field() {
        let src = "fn f() { take(1)[0]; self.0[i]; }";
        let (_, ast) = parse_src(src);
        let n = ast.fns[0]
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Index { .. }))
            .count();
        assert_eq!(n, 2);
    }

    #[test]
    fn typed_decls_fields_lets_params() {
        let src = "struct S { members: HashMap<u64, R>, names: Vec<u8> }\n\
                   fn f(seen: std::collections::HashSet<u64>) {\n\
                       let mut local: BTreeMap<u8, u8> = BTreeMap::new();\n\
                       let inferred = HashMap::new();\n\
                   }";
        let (_, ast) = parse_src(src);
        let pairs: Vec<_> = ast
            .decls
            .iter()
            .map(|d| (d.name.as_str(), d.ty_head.as_str()))
            .collect();
        assert!(pairs.contains(&("members", "HashMap")));
        assert!(pairs.contains(&("seen", "HashSet")));
        assert!(pairs.contains(&("local", "BTreeMap")));
        assert!(pairs.contains(&("inferred", "HashMap")));
        assert!(!pairs.iter().any(|(n, _)| *n == "names"));
    }

    #[test]
    fn call_order_is_source_order() {
        let src = "fn f() { alpha(); self.beta(); gamma(); }";
        let (_, ast) = parse_src(src);
        let names: Vec<_> = ast.fns[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call { path } => Some(path.last().unwrap().clone()),
                EventKind::MethodCall { method, .. } => Some(method.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn split_args_at_depth_zero() {
        let src = "fn f() { g(a, h(b, c), d); }";
        let (tokens, ast) = parse_src(src);
        let g = ast.fns[0]
            .events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Call { path } if path.last().unwrap() == "g"))
            .unwrap();
        let parts = split_args(&tokens, &g.args);
        assert_eq!(parts.len(), 3);
        assert_eq!(last_name_in(&tokens, &parts[2]), Some("d".to_string()));
    }

    #[test]
    fn path_call_segments() {
        let src = "fn f() { u32::try_from(x); mykil_crypto::envelope::seal_into(a, b); }";
        let (_, ast) = parse_src(src);
        let paths: Vec<Vec<String>> = ast.fns[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call { path } => Some(path.clone()),
                _ => None,
            })
            .collect();
        assert!(paths.contains(&vec!["u32".to_string(), "try_from".to_string()]));
        assert!(paths.contains(&vec![
            "mykil_crypto".to_string(),
            "envelope".to_string(),
            "seal_into".to_string()
        ]));
    }
}
