//! Arbitrary-precision unsigned integer arithmetic.
//!
//! [`BigUint`] stores numbers as little-endian `u32` limbs. The
//! representation is always *normalized*: no most-significant zero limbs,
//! and zero is the empty limb vector. Arithmetic is schoolbook with a
//! Knuth Algorithm D division and Montgomery-form modular exponentiation
//! for odd moduli (the RSA case).
//!
//! The API covers exactly what RSA and Miller–Rabin need; it is not a
//! general-purpose bignum crate.
//!
//! # Example
//!
//! ```
//! use mykil_crypto::bignum::BigUint;
//!
//! let a = BigUint::from(0xdead_beef_u64);
//! let b = BigUint::from(48_879_u64);
//! let (q, r) = a.div_rem(&b)?;
//! assert_eq!(&q * &b + &r, a);
//! # Ok::<(), mykil_crypto::CryptoError>(())
//! ```

mod add_sub;
mod convert;
mod div;
mod karatsuba;
mod modular;
mod montgomery;
mod mul;
mod random;
mod shift;

pub use montgomery::MontgomeryCtx;

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Stored as normalized little-endian `u32` limbs. Implements the
/// arithmetic operators for both owned values and references; operations
/// that can fail (division by zero, missing inverse) return
/// [`Result`](crate::CryptoError) instead of panicking.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs with no trailing (most-significant) zeros.
    pub(crate) limbs: Vec<u32>,
}

impl BigUint {
    /// The number zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The number one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Volatile-wipes the limbs and leaves the value zero. Used by key
    /// types whose components are private material.
    pub(crate) fn zeroize(&mut self) {
        crate::ct::zeroize_u32(&mut self.limbs);
        self.limbs.clear();
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub(crate) fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` when the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` when the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` when the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (zero has bit length 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian order), `false` beyond the top bit.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the limb vector if necessary.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 32;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 32);
    }

    /// Number of limbs in the normalized representation.
    pub(crate) fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Interprets the low 64 bits of the value.
    ///
    /// Returns `None` when the value does not fit in a `u64`.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self})")
    }
}

impl fmt::Display for BigUint {
    /// Hexadecimal rendering (no `0x` prefix); zero prints as `0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut iter = self.limbs.iter().rev();
        if let Some(top) = iter.next() {
            write!(f, "{top:x}")?;
        }
        for limb in iter {
            write!(f, "{limb:08x}")?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_properties() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert!(!z.is_odd());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(z.to_u64(), Some(0));
        assert_eq!(z, BigUint::default());
    }

    #[test]
    fn one_properties() {
        let o = BigUint::one();
        assert!(o.is_one());
        assert!(o.is_odd());
        assert_eq!(o.bit_len(), 1);
        assert_eq!(o.to_u64(), Some(1));
    }

    #[test]
    fn normalization_strips_high_zero_limbs() {
        let n = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(n.limb_len(), 1);
        assert_eq!(n.to_u64(), Some(5));
    }

    #[test]
    fn bit_access_round_trips() {
        let mut n = BigUint::zero();
        n.set_bit(0);
        n.set_bit(33);
        n.set_bit(95);
        assert!(n.bit(0));
        assert!(n.bit(33));
        assert!(n.bit(95));
        assert!(!n.bit(1));
        assert!(!n.bit(96));
        assert_eq!(n.bit_len(), 96);
    }

    #[test]
    fn ordering_by_magnitude() {
        let small = BigUint::from(7_u64);
        let big = BigUint::from(u64::MAX);
        let bigger = &big + &BigUint::one();
        assert!(small < big);
        assert!(big < bigger);
        assert_eq!(small.cmp(&small.clone()), Ordering::Equal);
    }

    #[test]
    fn display_hex() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from(0xdeadbeef_u64).to_string(), "deadbeef");
        assert_eq!(
            BigUint::from(0x1_0000_0001_u64).to_string(),
            "100000001"
        );
        assert_eq!(format!("{:?}", BigUint::from(255_u64)), "BigUint(0xff)");
    }

    #[test]
    fn to_u64_overflow() {
        let mut n = BigUint::zero();
        n.set_bit(64);
        assert_eq!(n.to_u64(), None);
    }
}
