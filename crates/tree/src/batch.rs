//! Batched rekeying (Section III-E of the paper).
//!
//! An area controller aggregates join and leave events until the next
//! multicast data packet arrives (or a freshness timer fires), then
//! performs one combined rekey. Aggregation means shared path segments
//! are refreshed once instead of once per event — the paper's Figure 6
//! example saves updates to `K_1` and `K_3` when `m_5` and `m_6` leave
//! together, and Section III reports 40–60% key-update savings overall.

use crate::error::TreeError;
use crate::plan::{RekeyPlan, UnicastKeys};
use crate::store::KeyStore;
use crate::tree::{NodeIdx, Tree};
use crate::MemberId;
use rand::RngCore;
use std::collections::BTreeSet;

/// Result of a batched rekey.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The combined rekey plan.
    pub plan: RekeyPlan,
    /// Members added in this batch.
    pub joined: Vec<MemberId>,
    /// Members removed in this batch.
    pub left: Vec<MemberId>,
}

impl<S: KeyStore> Tree<S> {
    /// Processes a batch of leave events as one rekey (Figure 6).
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] / [`TreeError::DuplicateInBatch`] on a
    /// bad member list; the tree is unmodified on error.
    pub fn batch_leave<R: RngCore + ?Sized>(
        &mut self,
        members: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        self.batch(&[], members, rng)
    }

    /// Processes a batch of join events as one rekey.
    ///
    /// Every newcomer receives its full key path by unicast; the single
    /// multicast refreshes the union of all affected paths once.
    ///
    /// # Errors
    ///
    /// [`TreeError::AlreadyMember`] / [`TreeError::DuplicateInBatch`] on
    /// a bad member list; the tree is unmodified on error.
    pub fn batch_join<R: RngCore + ?Sized>(
        &mut self,
        members: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        self.batch(members, &[], rng)
    }

    /// Processes aggregated joins and leaves as one rekey (the paper's
    /// "union of the join aggregation and leave aggregation procedures").
    ///
    /// Leavers are removed first so joiners can reuse their vacated
    /// leaves; all refreshed keys are distributed leave-style (encrypted
    /// under child keys) because departed members must not read them.
    ///
    /// # Errors
    ///
    /// Returns an error and leaves the tree unmodified when a joiner is
    /// already present, a leaver is absent, or any member appears twice.
    pub fn batch<R: RngCore + ?Sized>(
        &mut self,
        joins: &[MemberId],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        // Validate up front so errors cannot leave a half-applied batch.
        let mut seen = BTreeSet::new();
        for &m in joins.iter().chain(leaves) {
            if !seen.insert(m) {
                return Err(TreeError::DuplicateInBatch(m));
            }
        }
        for &m in joins {
            if self.contains(m) {
                return Err(TreeError::AlreadyMember(m));
            }
        }
        for &m in leaves {
            if !self.contains(m) {
                return Err(TreeError::NotAMember(m));
            }
        }

        let mut rekey_starts: Vec<NodeIdx> = Vec::with_capacity(joins.len() + leaves.len());

        // 1. Remove leavers, remembering where each rekey must start.
        for &m in leaves {
            // Validated above; a miss here is a planner bug surfaced as
            // a typed error rather than a panic in protocol code.
            let leaf = self
                .leaf_of(m)
                .map_err(|_| TreeError::Inconsistent("batch leaver vanished after validation"))?;
            if let Some(start) = self.remove_member(m, leaf) {
                rekey_starts.push(start);
            }
        }

        // 2. Place joiners (vacant leaves are preferred, so leave+join
        //    batches reuse slots — the Mykil keep-empty-leaf payoff).
        let mut displaced: BTreeSet<MemberId> = BTreeSet::new();
        let mut new_leaves = Vec::with_capacity(joins.len());
        for &m in joins {
            let (leaf, moved) = self.place_leaf(rng);
            self.occupy(leaf, m, rng);
            new_leaves.push((m, leaf));
            if let Some((dm, _)) = moved {
                displaced.insert(dm);
            }
            if let Some(p) = self.parent_of(leaf) {
                rekey_starts.push(p);
            }
        }

        // 3. One combined leave-style rekey over the union of paths.
        let mut plan = self.rekey_paths_leave_style(&rekey_starts, rng);

        // 4. Unicast full fresh paths to newcomers and displaced members.
        // The plan owns its key copies (it outlives this borrow of the
        // tree); each path is collected once, straight into the entry.
        for (m, _) in &new_leaves {
            let mut keys = Vec::new();
            self.path_keys_into(*m, &mut keys)
                .map_err(|_| TreeError::Inconsistent("just-placed member missing from tree"))?;
            plan.unicasts.push(UnicastKeys { member: *m, keys });
        }
        for m in displaced {
            // A member may be both displaced and a newcomer's neighbor;
            // skip if it already got a full path above.
            if new_leaves.iter().any(|(nm, _)| *nm == m) {
                continue;
            }
            let mut keys = Vec::new();
            self.path_keys_into(m, &mut keys)
                .map_err(|_| TreeError::Inconsistent("displaced member missing from tree"))?;
            plan.unicasts.push(UnicastKeys { member: m, keys });
        }

        Ok(BatchOutcome {
            plan,
            joined: joins.to_vec(),
            left: leaves.to_vec(),
        })
    }

    fn occupy<R: RngCore + ?Sized>(&mut self, leaf: NodeIdx, member: MemberId, rng: &mut R) {
        self.occupy_leaf(leaf, member, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{KeyTree, TreeConfig};
    use mykil_crypto::drbg::Drbg;

    fn tree_with(n: u64, cfg: TreeConfig, r: &mut Drbg) -> KeyTree {
        let mut t = KeyTree::new(cfg, r);
        for m in 0..n {
            t.join(MemberId(m), r).unwrap();
        }
        t
    }

    #[test]
    fn batch_leave_saves_shared_updates() {
        let mut r = Drbg::from_seed(1);
        // Figure 6 scenario: two siblings leave together.
        let mut batched = tree_with(16, TreeConfig::binary(), &mut r);
        let mut sequential = batched.clone();

        // Find two members whose leaves share a parent.
        let m_a = MemberId(4);
        let leaf_a = batched.leaf_of(m_a).unwrap();
        let parent = batched.path_to_root(leaf_a)[1];
        let sibling_leaf = batched
            .children_of(parent)
            .iter()
            .copied()
            .find(|&c| c != leaf_a && batched.occupant_of(c).is_some())
            .expect("full binary tree has occupied sibling");
        let m_b = batched.occupant_of(sibling_leaf).unwrap();

        let out = batched.batch_leave(&[m_a, m_b], &mut r).unwrap();
        let batched_bytes = out.plan.multicast_bytes();

        let p1 = sequential.leave(m_a, &mut r).unwrap();
        let p2 = sequential.leave(m_b, &mut r).unwrap();
        let sequential_bytes = p1.multicast_bytes() + p2.multicast_bytes();

        assert!(
            batched_bytes < sequential_bytes,
            "batched={batched_bytes} sequential={sequential_bytes}"
        );
        batched.check_invariants();
    }

    #[test]
    fn batch_leave_far_apart_members() {
        let mut r = Drbg::from_seed(2);
        let mut t = tree_with(64, TreeConfig::quad(), &mut r);
        let out = t
            .batch_leave(&[MemberId(0), MemberId(63)], &mut r)
            .unwrap();
        assert_eq!(t.member_count(), 62);
        assert_eq!(out.left.len(), 2);
        // Root appears exactly once among changes.
        let roots = out
            .plan
            .changes
            .iter()
            .filter(|c| c.node == t.root())
            .count();
        assert_eq!(roots, 1);
        t.check_invariants();
    }

    #[test]
    fn batch_join_single_multicast() {
        let mut r = Drbg::from_seed(3);
        let mut t = tree_with(10, TreeConfig::quad(), &mut r);
        let newcomers: Vec<MemberId> = (100..110).map(MemberId).collect();
        let out = t.batch_join(&newcomers, &mut r).unwrap();
        assert_eq!(t.member_count(), 20);
        assert!(out.plan.unicasts.len() >= 10);
        // Every newcomer got a full path ending at the root.
        for u in &out.plan.unicasts {
            assert_eq!(u.keys.last().unwrap().0, t.root());
            assert_eq!(&u.keys.last().unwrap().1, t.area_key());
        }
        t.check_invariants();
    }

    #[test]
    fn mixed_batch_reuses_vacated_leaves() {
        let mut r = Drbg::from_seed(4);
        let mut t = tree_with(20, TreeConfig::quad(), &mut r);
        let nodes_before = t.node_count();
        let out = t
            .batch(
                &[MemberId(100), MemberId(101)],
                &[MemberId(3), MemberId(7)],
                &mut r,
            )
            .unwrap();
        assert_eq!(t.member_count(), 20);
        assert_eq!(t.node_count(), nodes_before, "joins must reuse vacated leaves");
        assert_eq!(out.joined.len(), 2);
        assert_eq!(out.left.len(), 2);
        t.check_invariants();
    }

    #[test]
    fn batch_validation_is_atomic() {
        let mut r = Drbg::from_seed(5);
        let mut t = tree_with(8, TreeConfig::quad(), &mut r);
        let before = t.member_count();
        // Leaver not present -> error, no change.
        assert!(matches!(
            t.batch(&[MemberId(100)], &[MemberId(999)], &mut r),
            Err(TreeError::NotAMember(MemberId(999)))
        ));
        assert_eq!(t.member_count(), before);
        assert!(!t.contains(MemberId(100)));
        // Duplicate across join and leave -> error.
        assert!(matches!(
            t.batch(&[MemberId(5)], &[MemberId(5)], &mut r),
            Err(TreeError::DuplicateInBatch(MemberId(5)))
        ));
        // Joiner already present -> error.
        assert!(matches!(
            t.batch(&[MemberId(3)], &[], &mut r),
            Err(TreeError::AlreadyMember(MemberId(3)))
        ));
        t.check_invariants();
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut r = Drbg::from_seed(6);
        let mut t = tree_with(4, TreeConfig::quad(), &mut r);
        let key_before = t.area_key().clone();
        let out = t.batch(&[], &[], &mut r).unwrap();
        assert!(out.plan.is_empty());
        assert_eq!(t.area_key(), &key_before);
    }

    #[test]
    fn batch_of_one_matches_leave_shape() {
        let mut r1 = Drbg::from_seed(7);
        let mut r2 = Drbg::from_seed(7);
        let mut t1 = tree_with(32, TreeConfig::binary(), &mut r1);
        let mut t2 = tree_with(32, TreeConfig::binary(), &mut r2);
        let single = t1.leave(MemberId(9), &mut r1).unwrap();
        let batched = t2.batch_leave(&[MemberId(9)], &mut r2).unwrap();
        assert_eq!(single.keys_changed(), batched.plan.keys_changed());
        assert_eq!(single.encryption_count(), batched.plan.encryption_count());
    }

    #[test]
    fn large_batch_scales() {
        let mut r = Drbg::from_seed(8);
        let mut t = tree_with(256, TreeConfig::quad(), &mut r);
        let leavers: Vec<MemberId> = (0..64).map(MemberId).collect();
        let out = t.batch_leave(&leavers, &mut r).unwrap();
        assert_eq!(t.member_count(), 192);
        // Aggregated cost must be far below 64 separate leaves
        // (64 * height * arity keys); sanity bound only.
        assert!(out.plan.keys_changed() < 64 * t.height() as usize);
        t.check_invariants();
    }
}
