//! From-scratch cryptographic substrate for the Mykil reproduction.
//!
//! The Mykil paper (Huang & Mishra, DSN 2004) built its prototype on
//! OpenSSL: 2048-bit RSA for the join/rejoin handshakes, 128-bit symmetric
//! keys for area and auxiliary keys, and RC4 for bulk data on hand-held
//! devices. This crate reimplements that entire stack with no external
//! cryptographic dependencies so the reproduction is self-contained:
//!
//! - [`bignum::BigUint`] — arbitrary-precision unsigned arithmetic
//!   (schoolbook/Knuth-D core with Montgomery exponentiation)
//! - [`prime`] — Miller–Rabin testing and prime generation
//! - [`rsa`] — key generation, OAEP-style encryption (including the
//!   256-byte block / 215-byte plaintext limit the paper discusses in
//!   Section V-D), and hash-then-sign signatures
//! - [`sha256`] / [`hmac`] — message digests and MACs for every protocol
//!   message and ticket
//! - [`rc4`] — the paper's data-plane stream cipher (Section V-E)
//! - [`chacha`] / [`drbg`] — a deterministic, seedable random generator so
//!   the whole simulation is reproducible
//! - [`envelope`] — 128-bit-key encrypt-then-MAC envelope used for area
//!   and auxiliary key material
//!
//! # Security disclaimer
//!
//! This code is a faithful *systems* reproduction, not an audited
//! cryptographic library. It is constant-time nowhere and must not be
//! used to protect real data.
//!
//! # Example
//!
//! ```
//! use mykil_crypto::drbg::Drbg;
//! use mykil_crypto::rsa::RsaKeyPair;
//!
//! let mut rng = Drbg::from_seed(7);
//! let pair = RsaKeyPair::generate(768, &mut rng)?;
//! let ct = pair.public().encrypt(b"join request", &mut rng)?;
//! assert_eq!(pair.decrypt(&ct)?, b"join request");
//! # Ok::<(), mykil_crypto::CryptoError>(())
//! ```

pub mod bignum;
pub mod chacha;
pub mod ct;
pub mod drbg;
pub mod envelope;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod prime;
pub mod rc4;
pub mod rsa;
pub mod sha256;

pub use ct::ct_eq;
pub use error::CryptoError;

/// Length in bytes of the symmetric keys used throughout Mykil
/// (the paper uses 128-bit area and auxiliary keys).
pub const SYMMETRIC_KEY_LEN: usize = 16;

/// Length in bytes of a SHA-256 based MAC tag.
pub const MAC_LEN: usize = 32;
