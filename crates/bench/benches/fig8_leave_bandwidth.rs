//! Figure 8/9: key-update bandwidth for one leave event, Iolus vs LKH
//! vs Mykil, swept over the number of areas.
//!
//! Criterion times the *rekey computation* (plan building + byte
//! accounting) per protocol; the figure's actual byte values are
//! printed by `cargo run -p mykil-bench --bin report --release`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mykil_baselines::{FlatLkh, IolusGroup, KeyManager, MykilModel};
use mykil_crypto::drbg::Drbg;
use mykil_tree::{MemberId, TreeConfig};

const GROUP: u64 = 20_000;

fn bench_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_leave_event");
    let mut rng = Drbg::from_seed(1);

    let mut lkh = FlatLkh::new(TreeConfig::binary(), &mut rng);
    mykil_baselines::populate(&mut lkh, GROUP, &mut rng);
    group.bench_function("lkh_leave", |b| {
        let mut next = 0u64;
        b.iter(|| {
            // Leave + rejoin keeps the tree at steady state.
            let victim = MemberId(next % GROUP);
            next += 1;
            let t = lkh.leave(victim, &mut rng);
            lkh.join(victim, &mut rng);
            std::hint::black_box(t)
        });
    });

    for areas in [4u64, 20] {
        let mut mykil = MykilModel::new(areas as usize, TreeConfig::binary(), &mut rng);
        mykil_baselines::populate(&mut mykil, GROUP, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("mykil_leave", areas),
            &areas,
            |b, _| {
                let mut next = 0u64;
                b.iter(|| {
                    let victim = MemberId(next % GROUP);
                    next += 1;
                    let t = mykil.leave(victim, &mut rng);
                    mykil.join(victim, &mut rng);
                    std::hint::black_box(t)
                });
            },
        );
    }

    let mut iolus = IolusGroup::new(16);
    mykil_baselines::populate(&mut iolus, GROUP / 20, &mut rng);
    group.bench_function("iolus_leave_area1000", |b| {
        let mut next = 0u64;
        b.iter(|| {
            let victim = MemberId(next % (GROUP / 20));
            next += 1;
            let t = iolus.leave(victim, &mut rng);
            iolus.join(victim, &mut rng);
            std::hint::black_box(t)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_leave);
criterion_main!(benches);
