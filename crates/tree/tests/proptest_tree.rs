//! Property-based tests: tree invariants and executable secrecy
//! properties under arbitrary churn schedules.

use mykil_crypto::drbg::Drbg;
use mykil_tree::{KeyTree, MemberId, MemberView, TreeConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A churn schedule: each step joins `j` members and removes a subset of
/// the currently present ones selected by index.
#[derive(Debug, Clone)]
enum Op {
    Join(u8),
    LeaveNth(u8),
    BatchLeave(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..5).prop_map(Op::Join),
        (0u8..255).prop_map(Op::LeaveNth),
        proptest::collection::vec(0u8..255, 1..5).prop_map(Op::BatchLeave),
    ]
}

/// Applies ops, maintaining per-member views exactly as the protocol
/// distributes keys, and checks invariants + secrecy at each step.
fn run_schedule(arity: usize, seed: u64, ops: &[Op]) {
    run_schedule_cfg(TreeConfig::with_arity(arity), seed, ops)
}

fn run_schedule_cfg(cfg: TreeConfig, seed: u64, ops: &[Op]) {
    let mut rng = Drbg::from_seed(seed);
    let mut tree = KeyTree::new(cfg, &mut rng);
    let mut views: BTreeMap<MemberId, MemberView> = BTreeMap::new();
    let mut next_member = 0u64;

    let apply_plan = |views: &mut BTreeMap<MemberId, MemberView>,
                          plan: &mykil_tree::RekeyPlan| {
        for v in views.values_mut() {
            v.apply_plan(plan);
        }
        for u in &plan.unicasts {
            views
                .entry(u.member)
                .or_insert_with(|| MemberView::new(u.member))
                .apply_unicast(u);
        }
    };

    for op in ops {
        match op {
            Op::Join(k) => {
                for _ in 0..*k {
                    let m = MemberId(next_member);
                    next_member += 1;
                    let plan = tree.join(m, &mut rng).unwrap();
                    apply_plan(&mut views, &plan);
                }
            }
            Op::LeaveNth(n) => {
                let members: Vec<MemberId> = tree.members().collect();
                if members.is_empty() {
                    continue;
                }
                let victim = members[*n as usize % members.len()];
                let plan = tree.leave(victim, &mut rng).unwrap();
                let mut gone = views.remove(&victim).unwrap();
                // Forward secrecy: departed member learns nothing.
                assert_eq!(gone.apply_plan(&plan), 0);
                apply_plan(&mut views, &plan);
            }
            Op::BatchLeave(ns) => {
                let members: Vec<MemberId> = tree.members().collect();
                if members.is_empty() {
                    continue;
                }
                let mut victims: Vec<MemberId> = ns
                    .iter()
                    .map(|n| members[*n as usize % members.len()])
                    .collect();
                victims.sort_unstable();
                victims.dedup();
                let out = tree.batch_leave(&victims, &mut rng).unwrap();
                for v in &victims {
                    let mut gone = views.remove(v).unwrap();
                    assert_eq!(gone.apply_plan(&out.plan), 0);
                }
                apply_plan(&mut views, &out.plan);
            }
        }
        tree.check_invariants();
        // Liveness: every present member's view matches its tree path.
        let mut path = Vec::new();
        for m in tree.members() {
            let v = &views[&m];
            tree.path_keys_into(m, &mut path).unwrap();
            for (node, key) in path.drain(..) {
                assert_eq!(v.key(node), Some(key), "{m} stale at {node}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn churn_preserves_invariants_and_secrecy_binary(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_schedule(2, seed, &ops);
    }

    #[test]
    fn churn_preserves_invariants_and_secrecy_quad(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_schedule(4, seed, &ops);
    }

    #[test]
    fn churn_preserves_invariants_in_prune_mode(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        run_schedule_cfg(TreeConfig::quad().prune_on_leave(true), seed, &ops);
    }

    #[test]
    fn batched_leave_never_costs_more_than_sequential(
        seed in any::<u64>(),
        n_members in 8u64..40,
        picks in proptest::collection::vec(0u8..255, 2..6),
    ) {
        let mut rng = Drbg::from_seed(seed);
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut rng);
        for m in 0..n_members {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let members: Vec<MemberId> = tree.members().collect();
        let mut victims: Vec<MemberId> = picks
            .iter()
            .map(|p| members[*p as usize % members.len()])
            .collect();
        victims.sort_unstable();
        victims.dedup();

        let mut sequential = tree.clone();
        let out = tree.batch_leave(&victims, &mut rng).unwrap();
        let mut seq_bytes = 0;
        for v in &victims {
            seq_bytes += sequential.leave(*v, &mut rng).unwrap().multicast_bytes();
        }
        prop_assert!(
            out.plan.multicast_bytes() <= seq_bytes,
            "batched {} > sequential {}",
            out.plan.multicast_bytes(),
            seq_bytes
        );
    }

    #[test]
    fn join_paths_have_logarithmic_length(
        n in 1u64..200,
        arity in 2usize..5,
    ) {
        let mut rng = Drbg::from_seed(n);
        let mut tree = KeyTree::new(TreeConfig::with_arity(arity), &mut rng);
        for m in 0..n {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let bound = ((n as f64).log(arity as f64).ceil() as usize + 2).max(2);
        let mut path = Vec::new();
        for m in tree.members() {
            tree.path_keys_into(m, &mut path).unwrap();
            prop_assert!(
                path.len() <= bound + 1,
                "path {} exceeds bound {} for n={} arity={}",
                path.len(), bound, n, arity
            );
        }
    }
}
