//! Montgomery-form modular arithmetic for odd moduli.
//!
//! RSA moduli are always odd, so [`MontgomeryCtx`] is the fast path for
//! every modular exponentiation in the crate. Values are kept in
//! Montgomery form (`a·R mod n` with `R = 2^(32·limbs)`) and multiplied
//! with the word-by-word CIOS reduction.

use super::BigUint;
use crate::CryptoError;

/// Precomputed context for modular arithmetic modulo a fixed odd `n`.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: BigUint,
    /// Number of 32-bit limbs in `n` (defines `R = 2^(32·limbs)`).
    limbs: usize,
    /// `-n^{-1} mod 2^32`.
    n_prime: u32,
    /// `R^2 mod n`, used to convert into Montgomery form.
    r2: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for the odd modulus `n > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] when `n` is even or `<= 1`.
    pub fn new(n: &BigUint) -> Result<Self, CryptoError> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return Err(CryptoError::InvalidParameter(
                "montgomery modulus must be odd and greater than one",
            ));
        }
        let limbs = n.limb_len();
        // Newton iteration for the inverse of n mod 2^32.
        let n0 = n.limbs[0];
        let mut inv = 1u32;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        // R^2 mod n via shifting.
        let r2 = BigUint::one().shl_bits(limbs * 64).rem(n)?;
        Ok(MontgomeryCtx {
            n: n.clone(),
            limbs,
            n_prime,
            r2,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Converts `a` (already reduced mod `n`) into Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &self.r2)
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// CIOS Montgomery product: returns `a·b·R^{-1} mod n`.
    // The word-by-word CIOS recurrence reads and writes `t` at shifted
    // offsets; index arithmetic here is clearer than iterator zips.
    #[allow(clippy::needless_range_loop)]
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let s = self.limbs;
        let mut t = vec![0u32; s + 2];
        let a_limbs = &a.limbs;
        let b_limbs = &b.limbs;
        let n_limbs = &self.n.limbs;
        for i in 0..s {
            let ai = a_limbs.get(i).copied().unwrap_or(0) as u64;
            // t += a_i * b
            let mut carry = 0u64;
            for j in 0..s {
                let bj = b_limbs.get(j).copied().unwrap_or(0) as u64;
                let sum = t[j] as u64 + ai * bj + carry;
                t[j] = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[s] as u64 + carry;
            t[s] = sum as u32;
            t[s + 1] = (sum >> 32) as u32;

            // m = t[0] * n' mod 2^32; t += m * n; t >>= 32
            let m = t[0].wrapping_mul(self.n_prime) as u64;
            let sum = t[0] as u64 + m * n_limbs[0] as u64;
            let mut carry = sum >> 32;
            for j in 1..s {
                let sum = t[j] as u64 + m * n_limbs[j] as u64 + carry;
                t[j - 1] = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[s] as u64 + carry;
            t[s - 1] = sum as u32;
            t[s] = t[s + 1] + (sum >> 32) as u32;
            t[s + 1] = 0;
        }
        let mut out = BigUint::from_limbs(t[..=s].to_vec());
        if out >= self.n {
            out = &out - &self.n;
        }
        out
    }

    /// Modular exponentiation `base^exp mod n`.
    ///
    /// Uses a fixed 4-bit window over the exponent for large exponents
    /// (the RSA private-op case — ~25% fewer Montgomery products than
    /// the binary ladder) and the plain ladder for short ones.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> Result<BigUint, CryptoError> {
        if exp.bit_len() >= 64 {
            self.pow_windowed(base, exp)
        } else {
            self.pow_binary(base, exp)
        }
    }

    /// Left-to-right square-and-multiply (reference implementation,
    /// cross-checked against the windowed path in tests).
    pub fn pow_binary(&self, base: &BigUint, exp: &BigUint) -> Result<BigUint, CryptoError> {
        let base = base.rem(&self.n)?;
        if exp.is_zero() {
            return BigUint::one().rem(&self.n);
        }
        let base_m = self.to_mont(&base);
        let mut acc = base_m.clone();
        for i in (0..exp.bit_len() - 1).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        Ok(self.from_mont(&acc))
    }

    /// Fixed 4-bit-window exponentiation in Montgomery form.
    pub fn pow_windowed(&self, base: &BigUint, exp: &BigUint) -> Result<BigUint, CryptoError> {
        const WINDOW: usize = 4;
        let base = base.rem(&self.n)?;
        if exp.is_zero() {
            return BigUint::one().rem(&self.n);
        }
        // Precompute base^0..base^(2^W - 1) in Montgomery form.
        let one_m = self.to_mont(&BigUint::one().rem(&self.n)?);
        let base_m = self.to_mont(&base);
        let mut table = Vec::with_capacity(1 << WINDOW);
        table.push(one_m.clone());
        for i in 1..(1 << WINDOW) {
            let prev: &BigUint = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        // Walk the exponent MSB-first in 4-bit digits.
        let bits = exp.bit_len();
        let digits = bits.div_ceil(WINDOW);
        let mut acc = one_m;
        for d in (0..digits).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            let mut digit = 0usize;
            for b in (0..WINDOW).rev() {
                digit <<= 1;
                if exp.bit(d * WINDOW + b) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
            }
        }
        Ok(self.from_mont(&acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: u64) -> MontgomeryCtx {
        MontgomeryCtx::new(&BigUint::from(n)).unwrap()
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_err());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_err());
        assert!(MontgomeryCtx::new(&BigUint::from(10_u64)).is_err());
        assert!(MontgomeryCtx::new(&BigUint::from(9_u64)).is_ok());
    }

    #[test]
    fn mont_round_trip() {
        let c = ctx(1_000_000_007);
        for v in [0u64, 1, 2, 999_999_999, 123_456_789] {
            let x = BigUint::from(v);
            assert_eq!(c.from_mont(&c.to_mont(&x)), x, "v={v}");
        }
    }

    #[test]
    fn mont_mul_matches_plain() {
        let c = ctx(0xffff_ffff_ffff_fff1); // odd 64-bit modulus
        let a = BigUint::from(0x1234_5678_9abc_def0_u64);
        let b = BigUint::from(0x0fed_cba9_8765_4321_u64);
        let am = c.to_mont(&a);
        let bm = c.to_mont(&b);
        let prod = c.from_mont(&c.mont_mul(&am, &bm));
        let expected = (&a * &b).rem(c.modulus()).unwrap();
        assert_eq!(prod, expected);
    }

    #[test]
    fn pow_small_cases() {
        let c = ctx(97);
        // 5^96 mod 97 == 1 (Fermat)
        let r = c.pow(&BigUint::from(5_u64), &BigUint::from(96_u64)).unwrap();
        assert!(r.is_one());
        // base^0 == 1
        let r = c.pow(&BigUint::from(5_u64), &BigUint::zero()).unwrap();
        assert!(r.is_one());
        // base^1 == base
        let r = c.pow(&BigUint::from(5_u64), &BigUint::one()).unwrap();
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    fn pow_matches_u128_reference() {
        let modulus = 0xdead_beef_0000_0001_u64; // odd
        let c = ctx(modulus);
        let mut expected = 1u128;
        let base = 0x1357_9bdf_u64;
        for e in 0..64u64 {
            let got = c
                .pow(&BigUint::from(base), &BigUint::from(e))
                .unwrap()
                .to_u64()
                .unwrap();
            assert_eq!(got as u128, expected, "e={e}");
            expected = expected * base as u128 % modulus as u128;
        }
    }

    #[test]
    fn windowed_matches_binary_ladder() {
        use crate::drbg::Drbg;
        let mut rng = Drbg::from_seed(42);
        // Random odd moduli of assorted widths; exponents long enough to
        // hit the windowed path.
        for bits in [64usize, 96, 256, 512] {
            let mut n = BigUint::random_bits(bits, &mut rng);
            n.set_bit(0);
            if n.is_one() {
                continue;
            }
            let c = MontgomeryCtx::new(&n).unwrap();
            for _ in 0..3 {
                let base = BigUint::random_bits(bits, &mut rng);
                let exp = BigUint::random_bits(bits.max(65), &mut rng);
                assert_eq!(
                    c.pow_windowed(&base, &exp).unwrap(),
                    c.pow_binary(&base, &exp).unwrap(),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn windowed_edge_exponents() {
        let c = ctx(0xffff_ffff_ffff_fff1);
        let b = BigUint::from(12_345_u64);
        assert!(c.pow_windowed(&b, &BigUint::zero()).unwrap().is_one());
        assert_eq!(
            c.pow_windowed(&b, &BigUint::one()).unwrap(),
            c.pow_binary(&b, &BigUint::one()).unwrap()
        );
        // Exponent with long zero runs (exercises empty windows).
        let mut sparse = BigUint::zero();
        sparse.set_bit(0);
        sparse.set_bit(77);
        sparse.set_bit(200);
        assert_eq!(
            c.pow_windowed(&b, &sparse).unwrap(),
            c.pow_binary(&b, &sparse).unwrap()
        );
    }

    #[test]
    fn wide_modulus_pow() {
        // 193-bit odd modulus; verify a^(e1+e2) == a^e1 * a^e2.
        let mut n = BigUint::one().shl_bits(192);
        n.add_u32_assign(0x61); // odd tail
        let c = MontgomeryCtx::new(&n).unwrap();
        let a = BigUint::from_bytes_be(&[0x5a; 20]);
        let e1 = BigUint::from(12_345_u64);
        let e2 = BigUint::from(67_890_u64);
        let lhs = c.pow(&a, &(&e1 + &e2)).unwrap();
        let rhs = (&c.pow(&a, &e1).unwrap() * &c.pow(&a, &e2).unwrap())
            .rem(&n)
            .unwrap();
        assert_eq!(lhs, rhs);
    }
}
