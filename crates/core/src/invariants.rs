//! Global invariant checker for chaos runs.
//!
//! A fault schedule (crashes, partitions, loss, skew — see
//! `mykil_net::chaos`) may legally disturb every liveness property
//! while it is active, but once the network has quiesced the protocol
//! must have restored four safety properties:
//!
//! 1. **Key convergence** — every live, active member holds exactly
//!    the current area key of its area's live controller.
//! 2. **Forward secrecy** — no node that the live controller does not
//!    count as an enrolled member holds that controller's current
//!    area key (departure and eviction rekeys actually revoked it).
//! 3. **Single primary** — after partitions heal, at most one live
//!    controller per area holds the `Primary` role (epoch-fenced
//!    demotion reconciled any split brain).
//! 4. **Replication monotonicity** — a controller's replication
//!    sequence numbers never move backwards within one takeover
//!    lineage; a reset is legal only when the node's role, its
//!    takeover epoch, or its process incarnation changed (promotion,
//!    demotion, or a crash/restart cycle — recovery from an older
//!    checkpoint slot may legally rewind `applied_sync_seq`).
//! 5. **Durability** — a live controller's stable storage (newest
//!    valid checkpoint plus WAL suffix, see `crate::durable`) replays
//!    to a view consistent with its in-memory state: same role and
//!    fencing epoch, and for a primary the same member set and rekey
//!    epoch, a replication sequence no newer than memory, and no
//!    durably-evicted client still counted as a member. The same
//!    holds for the registration server's client-id counter and
//!    directory. This catches missing write-ahead commits: state the
//!    node would silently lose in a crash.
//!
//! The checker is stateful (for the monotonicity baseline): create one
//! per scenario and call [`InvariantChecker::check`] at every
//! quiescent point. A non-empty result is a protocol bug, not a
//! harness artifact — pair it with the serialized `FaultPlan` that
//! produced it for replay.

use crate::area::Role;
use crate::durable::{replay_ac, replay_rs};
use crate::group::GroupHandle;
use crate::scale::{AreaState, ScaleEvent, ScaleGroup};
use mykil_baselines::{ColdAreaModel, RekeyTraffic};
use mykil_net::NodeId;
use std::collections::BTreeMap;

/// One violated invariant, with enough context to debug a soak
/// failure without re-running it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Two live controllers of the same area both claim `Primary`.
    SplitBrain {
        /// Area index.
        area: usize,
        /// The two nodes claiming the role.
        nodes: (NodeId, NodeId),
    },
    /// An active member's key differs from its live controller's.
    KeyDivergence {
        /// The member node.
        member: NodeId,
        /// Area index the member believes it is in.
        area: usize,
    },
    /// A node outside the controller's membership holds the current
    /// area key.
    ForwardSecrecy {
        /// The offending node.
        member: NodeId,
        /// Area index whose key leaked.
        area: usize,
    },
    /// A replication sequence number moved backwards within one
    /// takeover lineage.
    ReplicationRegression {
        /// The controller node.
        node: NodeId,
        /// Which counter regressed (`"sync_seq"` / `"applied_sync_seq"`).
        counter: &'static str,
        /// Value at the previous quiescent check.
        prev: u64,
        /// Value now.
        seen: u64,
    },
    /// A controller's stable storage replays to a view inconsistent
    /// with its live in-memory state: a crash now would lose or
    /// corrupt state the protocol believes is durable.
    DurabilityDrift {
        /// The controller node.
        node: NodeId,
        /// Area index.
        area: usize,
        /// What diverged.
        detail: String,
    },
    /// A client the durable log records as evicted is still counted as
    /// a member in memory — replaying the log would resurrect state
    /// the live node already revoked (or vice versa).
    Resurrection {
        /// The controller node.
        node: NodeId,
        /// Area index.
        area: usize,
        /// The evicted-yet-present client id.
        client: u64,
    },
    /// The registration server's stable storage disagrees with its
    /// in-memory state.
    RsDurabilityDrift {
        /// What diverged.
        detail: String,
    },
    /// A hybrid-scale area's live membership (cold aggregate + hot
    /// set) disagrees with its own admission/departure counters:
    /// members were lost or duplicated somewhere between the hot
    /// handshakes and the cold aggregate.
    ScaleConservation {
        /// Area index.
        area: usize,
        /// `joins - hot_leaves - cold_leaves`.
        expected: u64,
        /// `cold + hot` actually live.
        seen: u64,
    },
    /// A hybrid-scale area performed a departure without rotating the
    /// area key: the forward-secrecy analog for the aggregate model,
    /// where every leave batch must bump the epoch exactly once.
    ScaleEpochStuck {
        /// Area index.
        area: usize,
        /// Epoch an independent replay of the counters reaches.
        expected: u64,
        /// Epoch the controller's aggregate actually holds.
        seen: u64,
    },
    /// The scale harness's rekey-byte ledger diverged from an
    /// independent closed-form replay of the membership history —
    /// either the controllers' accumulated traffic or the simulator's
    /// stats counters drifted.
    ScaleLedgerDrift {
        /// Which ledger drifted (e.g. `"scale-rekey-multicast-bytes"`).
        counter: &'static str,
        /// Bytes the independent replay predicts.
        expected: u64,
        /// Bytes the ledger records.
        seen: u64,
    },
    /// Mobility conservation: globally, every move-out must be matched
    /// by exactly one move-in — a mismatch means a mover vanished
    /// mid-transfer or was admitted twice.
    ScaleMoveImbalance {
        /// Total move-outs across all areas.
        moves_out: u64,
        /// Total move-ins across all areas.
        moves_in: u64,
    },
    /// Post-fault re-convergence: a faulted scale-area controller is
    /// still crashed, still refusing requests, or restarted without
    /// recording a completed recovery for every process incarnation.
    ScaleRecoveryIncomplete {
        /// Area index.
        area: usize,
        /// Crash/restart cycles the simulator counted.
        restarts: u64,
        /// Completed recoveries the controller recorded.
        recovered: u64,
    },
    /// A durable scale-area controller's live state disagrees with a
    /// refold of its own journal: a crash now would recover to a
    /// different membership or byte ledger than the one being served.
    ScaleJournalDrift {
        /// Area index.
        area: usize,
        /// What diverged.
        detail: String,
    },
    /// The scale directory's journal replica disagrees with the
    /// controller's journal at a quiescent point: a takeover from the
    /// replica would lose or invent acknowledged events.
    ScaleDirectoryDrift {
        /// Area index.
        area: usize,
        /// What diverged.
        detail: String,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::SplitBrain { area, nodes } => write!(
                f,
                "split brain: area {area} has two live primaries {:?} and {:?}",
                nodes.0, nodes.1
            ),
            InvariantViolation::KeyDivergence { member, area } => write!(
                f,
                "key divergence: active member {member:?} disagrees with area {area}'s controller"
            ),
            InvariantViolation::ForwardSecrecy { member, area } => write!(
                f,
                "forward secrecy: non-member {member:?} holds area {area}'s current key"
            ),
            InvariantViolation::ReplicationRegression {
                node,
                counter,
                prev,
                seen,
            } => write!(
                f,
                "replication regression: {node:?} {counter} went {prev} -> {seen}"
            ),
            InvariantViolation::DurabilityDrift { node, area, detail } => write!(
                f,
                "durability drift: area {area} controller {node:?}: {detail}"
            ),
            InvariantViolation::Resurrection { node, area, client } => write!(
                f,
                "resurrection: area {area} controller {node:?} counts durably-evicted \
                 client {client} as a member"
            ),
            InvariantViolation::RsDurabilityDrift { detail } => write!(
                f,
                "rs durability drift: {detail}"
            ),
            InvariantViolation::ScaleConservation {
                area,
                expected,
                seen,
            } => write!(
                f,
                "scale conservation: area {area} counters say {expected} live members \
                 but cold+hot holds {seen}"
            ),
            InvariantViolation::ScaleEpochStuck {
                area,
                expected,
                seen,
            } => write!(
                f,
                "scale epoch stuck: area {area} should be at key epoch {expected} \
                 after its departures but is at {seen}"
            ),
            InvariantViolation::ScaleLedgerDrift {
                counter,
                expected,
                seen,
            } => write!(
                f,
                "scale ledger drift: {counter} replay predicts {expected} bytes \
                 but ledger records {seen}"
            ),
            InvariantViolation::ScaleMoveImbalance {
                moves_out,
                moves_in,
            } => write!(
                f,
                "scale move imbalance: {moves_out} members moved out of their areas \
                 but {moves_in} moved in"
            ),
            InvariantViolation::ScaleRecoveryIncomplete {
                area,
                restarts,
                recovered,
            } => write!(
                f,
                "scale recovery incomplete: area {area} restarted {restarts} time(s) \
                 but completed {recovered} recover(ies)"
            ),
            InvariantViolation::ScaleJournalDrift { area, detail } => write!(
                f,
                "scale journal drift: area {area}: {detail}"
            ),
            InvariantViolation::ScaleDirectoryDrift { area, detail } => write!(
                f,
                "scale directory drift: area {area}: {detail}"
            ),
        }
    }
}

/// Per-controller baseline for the monotonicity invariant.
#[derive(Debug, Clone, Copy)]
struct ReplBaseline {
    takeover_epoch: u64,
    is_primary: bool,
    sync_seq: u64,
    applied_sync_seq: u64,
    /// Process incarnation ([`mykil_net::Simulator::restart_count`])
    /// the counters were sampled in.
    restarts: u64,
}

/// Stateful checker; see the module docs for the invariants.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    repl: BTreeMap<NodeId, ReplBaseline>,
}

impl InvariantChecker {
    /// Creates a checker with an empty monotonicity baseline.
    pub fn new() -> InvariantChecker {
        InvariantChecker::default()
    }

    /// Runs every invariant against the current simulation state and
    /// returns all violations found (empty = healthy).
    pub fn check(&mut self, g: &GroupHandle) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let areas = g.primaries.len();

        // Resolve each area's live controller (and catch split brain
        // while doing so). An area whose deployed pair is entirely
        // crashed has no live controller: liveness is suspended there,
        // but no safety property can be violated by a dead node.
        let mut live: Vec<Option<NodeId>> = Vec::with_capacity(areas);
        for area in 0..areas {
            let mut primaries_here: Vec<NodeId> = Vec::new();
            let mut pair = vec![g.primaries[area]];
            if let Some(&b) = g.backups.get(area) {
                pair.push(b);
            }
            for node in pair {
                if g.sim.is_crashed(node) {
                    continue;
                }
                let ctrl = if node == g.primaries[area] {
                    g.ac(area)
                } else {
                    g.backup(area)
                };
                if ctrl.role() == Role::Primary {
                    primaries_here.push(node);
                }
            }
            if primaries_here.len() > 1 {
                out.push(InvariantViolation::SplitBrain {
                    area,
                    nodes: (primaries_here[0], primaries_here[1]),
                });
            }
            live.push(primaries_here.first().copied());
        }

        // Key convergence + forward secrecy, one pass over the members.
        for &m in &g.members {
            if g.sim.is_crashed(m) {
                continue;
            }
            let member = g.member(m);
            let held = member.current_area_key();
            let member_area = member.area().map(|a| a.0 as usize);
            for (area, live_ctrl) in live.iter().enumerate().take(areas) {
                let Some(ctrl_node) = *live_ctrl else { continue };
                let ctrl = if ctrl_node == g.primaries[area] {
                    g.ac(area)
                } else {
                    g.backup(area)
                };
                let enrolled = member
                    .client_id()
                    .is_some_and(|c| ctrl.has_member(c));
                if member.is_active() && member_area == Some(area) {
                    if held != Some(ctrl.area_key()) {
                        out.push(InvariantViolation::KeyDivergence { member: m, area });
                    }
                } else if !enrolled && held == Some(ctrl.area_key()) {
                    // Not this area's member (and the controller agrees):
                    // holding its current key means an eviction or leave
                    // rekey failed to revoke access.
                    out.push(InvariantViolation::ForwardSecrecy { member: m, area });
                }
            }
        }

        // Replication monotonicity within a takeover lineage.
        for area in 0..areas {
            let mut pair = vec![g.primaries[area]];
            if let Some(&b) = g.backups.get(area) {
                pair.push(b);
            }
            for node in pair {
                let ctrl = if node == g.primaries[area] {
                    g.ac(area)
                } else {
                    g.backup(area)
                };
                let now = ReplBaseline {
                    takeover_epoch: ctrl.takeover_epoch(),
                    is_primary: ctrl.role() == Role::Primary,
                    sync_seq: ctrl.sync_seq(),
                    applied_sync_seq: ctrl.applied_sync_seq(),
                    restarts: g.sim.restart_count(node),
                };
                if let Some(prev) = self.repl.get(&node) {
                    // Promotion/demotion starts a new lineage; within
                    // one, both counters may only grow. A crash/restart
                    // cycle also starts a new lineage: recovery from an
                    // older checkpoint slot (the newest was corrupted)
                    // may legally rewind the counters.
                    let same_lineage = prev.takeover_epoch == now.takeover_epoch
                        && prev.is_primary == now.is_primary
                        && prev.restarts == now.restarts;
                    if same_lineage {
                        if now.sync_seq < prev.sync_seq {
                            out.push(InvariantViolation::ReplicationRegression {
                                node,
                                counter: "sync_seq",
                                prev: prev.sync_seq,
                                seen: now.sync_seq,
                            });
                        }
                        if now.applied_sync_seq < prev.applied_sync_seq {
                            out.push(InvariantViolation::ReplicationRegression {
                                node,
                                counter: "applied_sync_seq",
                                prev: prev.applied_sync_seq,
                                seen: now.applied_sync_seq,
                            });
                        }
                    }
                }
                self.repl.insert(node, now);
            }
        }

        // Durability: every live controller's stable storage must
        // replay to a view consistent with its in-memory state. Nodes
        // that never persisted anything are skipped (pre-durability
        // harness nodes); crashed nodes are checked on recovery via
        // the other invariants.
        for area in 0..areas {
            let mut pair = vec![g.primaries[area]];
            if let Some(&b) = g.backups.get(area) {
                pair.push(b);
            }
            for node in pair {
                if g.sim.is_crashed(node) || !g.sim.storage(node).has_durable_state() {
                    continue;
                }
                let rec = g.sim.storage(node).load();
                let Some(view) =
                    replay_ac(rec.checkpoint.as_ref().map(|(_, b)| b.as_slice()), &rec.wal)
                else {
                    out.push(InvariantViolation::DurabilityDrift {
                        node,
                        area,
                        detail: "stable storage does not replay".into(),
                    });
                    continue;
                };
                let ctrl = if node == g.primaries[area] {
                    g.ac(area)
                } else {
                    g.backup(area)
                };
                let mem_primary = ctrl.role() == Role::Primary;
                if view.primary != mem_primary {
                    out.push(InvariantViolation::DurabilityDrift {
                        node,
                        area,
                        detail: format!(
                            "durable primary={} but memory primary={mem_primary}",
                            view.primary
                        ),
                    });
                }
                if view.takeover_epoch != ctrl.takeover_epoch() {
                    out.push(InvariantViolation::DurabilityDrift {
                        node,
                        area,
                        detail: format!(
                            "durable takeover_epoch={} but memory has {}",
                            view.takeover_epoch,
                            ctrl.takeover_epoch()
                        ),
                    });
                }
                if mem_primary && view.primary {
                    let mem_members = ctrl.member_ids();
                    if view.members != mem_members {
                        out.push(InvariantViolation::DurabilityDrift {
                            node,
                            area,
                            detail: format!(
                                "durable members {:?} != memory members {:?}",
                                view.members, mem_members
                            ),
                        });
                    }
                    if view.epoch != ctrl.epoch() {
                        out.push(InvariantViolation::DurabilityDrift {
                            node,
                            area,
                            detail: format!(
                                "durable epoch={} but memory has {}",
                                view.epoch,
                                ctrl.epoch()
                            ),
                        });
                    }
                    if view.sync_seq > ctrl.sync_seq() {
                        out.push(InvariantViolation::DurabilityDrift {
                            node,
                            area,
                            detail: format!(
                                "durable sync_seq={} ahead of memory {}",
                                view.sync_seq,
                                ctrl.sync_seq()
                            ),
                        });
                    }
                    for &client in view.evicted.intersection(&mem_members) {
                        out.push(InvariantViolation::Resurrection { node, area, client });
                    }
                }
            }
        }

        // Registration-server durability: the id counter and directory
        // the RS would recover with must match what it serves now.
        let rs_node = g.rs();
        if !g.sim.is_crashed(rs_node) && g.sim.storage(rs_node).has_durable_state() {
            let rec = g.sim.storage(rs_node).load();
            match replay_rs(rec.checkpoint.as_ref().map(|(_, b)| b.as_slice()), &rec.wal) {
                None => out.push(InvariantViolation::RsDurabilityDrift {
                    detail: "stable storage does not replay".into(),
                }),
                Some(view) => {
                    let rs = g.registration_server();
                    if view.next_client != rs.next_client() {
                        out.push(InvariantViolation::RsDurabilityDrift {
                            detail: format!(
                                "durable next_client={} but memory has {}",
                                view.next_client,
                                rs.next_client()
                            ),
                        });
                    }
                    if &view.directory != rs.directory() {
                        out.push(InvariantViolation::RsDurabilityDrift {
                            detail: "durable directory differs from memory".into(),
                        });
                    }
                }
            }
        }

        out
    }
}

/// Checks the hybrid-scale invariants against a [`ScaleGroup`]
/// (ISSUEs 7 and 8): per-area membership conservation (now including
/// inter-area moves), global move balance, the epoch-rotation
/// forward-secrecy analog, post-fault re-convergence, and byte-exact
/// agreement between three independently-maintained ledgers — the
/// controllers' accumulated [`RekeyTraffic`], the simulator's stats
/// counters, and a fresh closed-form replay of each area's history.
///
/// The replay is exact (not a bound) because controllers charge every
/// rekey at the *total* area size `cold + hot`: promotion and demotion
/// preserve that total, so the byte sequence depends only on the event
/// sequence, not on how the handshakes interleaved. In durable mode
/// the replay refolds each area's full journal through
/// [`AreaState::apply`] — the same code the live controller ran — and
/// additionally demands that the refold reproduces the served state
/// (journal drift) and that the directory's replica matches the
/// journal (directory drift). In volatile mode the journal holds only
/// the moves, and the replay runs the per-area scalars in phase order:
/// joins, then the journaled moves, then hot leaves, then cold
/// batches. Stateless, unlike [`InvariantChecker`]: call at any
/// quiescent point.
pub fn check_scale(g: &ScaleGroup) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let cfg = g.config();
    let mut replay_total = RekeyTraffic::default();
    let mut modeled_total = RekeyTraffic::default();
    let mut moves_out_total = 0u64;
    let mut moves_in_total = 0u64;

    for (area, ctrl) in g.controllers().enumerate() {
        moves_out_total += ctrl.moves_out();
        moves_in_total += ctrl.moves_in();

        if cfg.durable {
            // Post-fault re-convergence: every crash/restart cycle the
            // simulator counted must have a matching completed
            // recovery, and the controller must be serving again.
            let node = g.controller_ids()[area];
            let restarts = g.sim.restart_count(node);
            let recovered = ctrl.recovery_samples().len() as u64;
            if g.sim.is_crashed(node) || !ctrl.converged() || recovered != restarts {
                out.push(InvariantViolation::ScaleRecoveryIncomplete {
                    area,
                    restarts,
                    recovered,
                });
                // Mid-recovery state explains nothing; the remaining
                // per-area checks would only cascade.
                continue;
            }
        }

        // Conservation: the controller's own counters must explain
        // exactly the members it still holds.
        let admitted = ctrl.joins() + ctrl.moves_in();
        let departed = ctrl.hot_leaves() + ctrl.cold_leaves() + ctrl.moves_out();
        let expected_live = admitted.saturating_sub(departed);
        if ctrl.live_members() != expected_live {
            out.push(InvariantViolation::ScaleConservation {
                area,
                expected: expected_live,
                seen: ctrl.live_members(),
            });
        }

        let replay = if cfg.durable {
            // Durable mode: refold the full journal through the same
            // AreaState::apply the live controller ran. The refold
            // must reproduce the served state exactly — otherwise a
            // crash now would recover to a different area.
            let s = AreaState::replay(cfg, ctrl.seeded(), ctrl.journal());
            let live = ctrl.state();
            if s.live() != live.live()
                || s.joins != live.joins
                || s.hot_leaves != live.hot_leaves
                || s.cold_leaves != live.cold_leaves
                || s.moves_out != live.moves_out
                || s.moves_in != live.moves_in
                || s.hot != live.hot
            {
                out.push(InvariantViolation::ScaleJournalDrift {
                    area,
                    detail: format!(
                        "journal refolds to live={} joins={} hot_leaves={} cold_leaves={} \
                         moves_out={} moves_in={} but controller serves live={} joins={} \
                         hot_leaves={} cold_leaves={} moves_out={} moves_in={}",
                        s.live(),
                        s.joins,
                        s.hot_leaves,
                        s.cold_leaves,
                        s.moves_out,
                        s.moves_in,
                        live.live(),
                        live.joins,
                        live.hot_leaves,
                        live.cold_leaves,
                        live.moves_out,
                        live.moves_in,
                    ),
                });
            }
            s.cold
        } else {
            // Volatile mode: independent replay in phase order — J
            // joins at sizes 1..=J, the journaled moves in order, then
            // H hot leaves at descending pre-departure sizes, then
            // batches of `cold_batch` until the drained count is
            // reached.
            let mut replay = ColdAreaModel::new(cfg.key_len, cfg.rsa_len, cfg.arity);
            for _ in 0..ctrl.joins() {
                replay.join();
            }
            for ev in ctrl.journal() {
                match ev {
                    ScaleEvent::MoveOut(_) => {
                        let size = replay.cold_members();
                        replay.charge_move_out_at(size);
                        replay.release(1);
                    }
                    ScaleEvent::MoveIn(_) => {
                        replay.absorb(1);
                        let size = replay.cold_members();
                        replay.charge_move_in_at(size);
                    }
                    _ => {} // volatile journals hold only moves
                }
            }
            for _ in 0..ctrl.hot_leaves() {
                let size = replay.cold_members();
                replay.charge_single_leave_at(size);
                replay.release(1);
            }
            let mut drained = 0;
            while drained < ctrl.cold_leaves() {
                let k = cfg
                    .cold_batch
                    .min(replay.cold_members())
                    .min(ctrl.cold_leaves() - drained);
                if k == 0 {
                    break; // counters are inconsistent; conservation catches it
                }
                replay.batch_leave(k);
                drained += k;
            }
            replay
        };

        if ctrl.cold().epoch() != replay.epoch() {
            out.push(InvariantViolation::ScaleEpochStuck {
                area,
                expected: replay.epoch(),
                seen: ctrl.cold().epoch(),
            });
        }
        replay_total += replay.traffic();
        modeled_total += ctrl.cold().traffic();
    }

    // Mobility conservation: globally, outs and ins must pair up.
    if moves_out_total != moves_in_total {
        out.push(InvariantViolation::ScaleMoveImbalance {
            moves_out: moves_out_total,
            moves_in: moves_in_total,
        });
    }

    // Directory agreement: at a quiescent point the replica must hold
    // exactly the journal the controller acknowledged events from.
    if let Some(dir) = g.directory() {
        for (area, ctrl) in g.controllers().enumerate() {
            if dir.seeded(area) != ctrl.seeded() {
                out.push(InvariantViolation::ScaleDirectoryDrift {
                    area,
                    detail: format!(
                        "replica seeded={} but controller seeded={}",
                        dir.seeded(area),
                        ctrl.seeded()
                    ),
                });
            }
            if dir.journal(area) != ctrl.journal() {
                out.push(InvariantViolation::ScaleDirectoryDrift {
                    area,
                    detail: format!(
                        "replica journal has {} event(s) but controller journal has {} \
                         (or contents differ)",
                        dir.journal(area).len(),
                        ctrl.journal().len()
                    ),
                });
            }
        }
    }

    // The three ledgers must agree byte-for-byte: replay vs the
    // controllers' accumulators vs the simulator's stats counters.
    let stats = g.sim.stats();
    let checks: [(&'static str, u64, u64); 6] = [
        (
            "scale-model-multicast-bytes",
            replay_total.multicast_bytes,
            modeled_total.multicast_bytes,
        ),
        (
            "scale-model-unicast-bytes",
            replay_total.unicast_bytes,
            modeled_total.unicast_bytes,
        ),
        (
            "scale-rekey-multicast-bytes",
            replay_total.multicast_bytes,
            stats.counter("scale-rekey-multicast-bytes"),
        ),
        (
            "scale-rekey-unicast-bytes",
            replay_total.unicast_bytes,
            stats.counter("scale-rekey-unicast-bytes"),
        ),
        (
            "scale-moves-out",
            moves_out_total,
            stats.counter("scale-moves-out"),
        ),
        (
            "scale-moves-in",
            moves_in_total,
            stats.counter("scale-moves-in"),
        ),
    ];
    for (counter, expected, seen) in checks {
        if expected != seen {
            out.push(InvariantViolation::ScaleLedgerDrift {
                counter,
                expected,
                seen,
            });
        }
    }
    out
}
