//! Property-based tests for the pluggable stable-storage layer
//! (ISSUE 9): the simulated device and the real file-backed device
//! must be observationally equivalent under arbitrary operation/fault
//! sequences, recovery must be a fixpoint on both, the ping-pong slots
//! must fall back correctly under every corruption combination, and a
//! `FileStore` must survive reopen-from-disk and crash-mid-checkpoint.
//!
//! Equivalence is over `load()` payloads, WAL suffixes, durable-state
//! flags and operation counters — *not* checkpoint sequence numbers,
//! which the wrapper assigns at flush time while the simulated device
//! assigns at call time (a crash can discard a consumed number).

use mykil_net::{scratch_dir, FaultyStore, FileStore, SimStore, StableStore, StoreFault};
use proptest::prelude::*;
use std::path::Path;

/// One storage operation or injected fault.
#[derive(Debug, Clone)]
enum Op {
    Append(Vec<u8>),
    Commit(Vec<u8>),
    Sync,
    Checkpoint(Vec<u8>),
    Crash,
    ArmLostTail,
    ArmTorn,
    CorruptCkpt,
    CorruptSlot(u8),
    Heal,
}

fn payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..24)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        payload().prop_map(Op::Append),
        payload().prop_map(Op::Commit),
        Just(Op::Sync),
        payload().prop_map(Op::Checkpoint),
        Just(Op::Crash),
        Just(Op::ArmLostTail),
        Just(Op::ArmTorn),
        Just(Op::CorruptCkpt),
        (0u8..2).prop_map(Op::CorruptSlot),
        Just(Op::Heal),
    ]
}

fn apply(store: &mut dyn StableStore, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Append(b) => store.wal_append(b.clone()),
            Op::Commit(b) => store.wal_commit(b.clone()),
            Op::Sync => store.sync(),
            Op::Checkpoint(b) => store.checkpoint(b.clone()),
            Op::Crash => {
                let _ = store.on_crash();
            }
            Op::ArmLostTail => {
                store.arm_lying_sync(false);
            }
            Op::ArmTorn => {
                store.arm_lying_sync(true);
            }
            Op::CorruptCkpt => store.corrupt_latest_checkpoint(),
            Op::CorruptSlot(i) => {
                store.inject(StoreFault::CorruptSlot(*i));
            }
            Op::Heal => store.heal(),
        }
    }
}

/// Everything two equivalent devices must agree on after any history.
fn view(store: &dyn StableStore) -> (Option<Vec<u8>>, Vec<Vec<u8>>, bool, u64, u64) {
    let r = store.load();
    (
        r.checkpoint.map(|(_, p)| p),
        r.wal,
        store.has_durable_state(),
        store.sync_count(),
        store.checkpoint_count(),
    )
}

fn file_backed(dir: &Path) -> FaultyStore<FileStore> {
    FaultyStore::new(FileStore::open(dir).expect("open scratch file store"))
}

proptest! {
    /// The simulated device and a fault-wrapped real file device agree
    /// on every observable after any mixed operation/fault history —
    /// `FaultyStore<FileStore>` really is a drop-in for `SimStore`.
    #[test]
    fn sim_and_file_devices_are_equivalent(
        ops in proptest::collection::vec(op(), 0..24)
    ) {
        let dir = scratch_dir("storage-equiv");
        let mut sim = SimStore::new();
        let mut file = file_backed(&dir);
        apply(&mut sim, &ops);
        apply(&mut file, &ops);
        prop_assert_eq!(view(&sim), view(&file));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// load → write the loaded state back as a checkpoint → load is a
    /// fixpoint on both backends: the second load returns exactly the
    /// re-checkpointed payload with an empty WAL suffix, and repeating
    /// the cycle changes nothing further.
    #[test]
    fn recovery_is_a_fixpoint_on_both_backends(
        ops in proptest::collection::vec(op(), 0..24)
    ) {
        let dir = scratch_dir("storage-fixpoint");
        let stores: Vec<Box<dyn StableStore>> =
            vec![Box::new(SimStore::new()), Box::new(file_backed(&dir))];
        for mut store in stores {
            apply(store.as_mut(), &ops);
            // A crashed-then-healed device: recovery never runs against
            // live armed faults.
            let _ = store.on_crash();
            store.heal();

            let first = store.load();
            // "Replay" is opaque here: fold the recovered state into a
            // synthetic full-state snapshot, as real recovery does.
            let mut snapshot = Vec::new();
            if let Some((_, c)) = &first.checkpoint {
                snapshot.extend_from_slice(c);
            }
            for rec in &first.wal {
                snapshot.extend_from_slice(rec);
            }
            store.checkpoint(snapshot.clone());

            let second = store.load();
            prop_assert_eq!(
                second.checkpoint.as_ref().map(|(_, p)| p.clone()),
                Some(snapshot.clone()),
                "checkpoint written by recovery did not read back"
            );
            prop_assert!(second.wal.is_empty(), "WAL suffix survived the checkpoint");

            store.checkpoint(snapshot.clone());
            let third = store.load();
            prop_assert_eq!(third.checkpoint.map(|(_, p)| p), Some(snapshot));
            prop_assert!(third.wal.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Whatever was durable before a crash is exactly what a fresh
    /// `FileStore` opened over the same directory recovers — the
    /// wrapper's post-crash view IS the on-disk truth.
    #[test]
    fn file_store_reopens_to_the_post_crash_state(
        ops in proptest::collection::vec(op(), 0..24)
    ) {
        let dir = scratch_dir("storage-reopen");
        let mut store = file_backed(&dir);
        apply(&mut store, &ops);
        let _ = store.on_crash();
        store.heal();
        let before = store.load();
        drop(store);

        let reopened = FileStore::open(&dir).expect("reopen");
        let after = reopened.load();
        prop_assert_eq!(before.checkpoint, after.checkpoint);
        prop_assert_eq!(before.wal, after.wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Exhaustive ping-pong fallback matrix, run against both backends.
/// History: checkpoint `p1`, commit `a`, checkpoint `p2`, commit `b` —
/// so one slot holds `p1`, the other `p2`, and the WAL holds `[a, b]`
/// (`a` is above `p1`'s position, so installing `p2` must not truncate
/// it). Every subset of corrupted slots has a forced recovery outcome.
#[test]
fn older_slot_fallback_under_every_corruption_combination() {
    let p1 = b"ckpt-one".to_vec();
    let p2 = b"ckpt-two".to_vec();
    let a = b"rec-a".to_vec();
    let b = b"rec-b".to_vec();

    let build = |which: &str| -> Vec<Box<dyn StableStore>> {
        let dir = scratch_dir(&format!("storage-slots-{which}"));
        vec![Box::new(SimStore::new()), Box::new(file_backed(&dir))]
    };

    for combo in 0u8..4 {
        for mut store in build(&format!("combo{combo}")) {
            store.checkpoint(p1.clone());
            store.wal_commit(a.clone());
            store.checkpoint(p2.clone());
            store.wal_commit(b.clone());
            if combo & 1 != 0 {
                store.inject(StoreFault::CorruptSlot(0));
            }
            if combo & 2 != 0 {
                store.inject(StoreFault::CorruptSlot(1));
            }
            let r = store.load();
            let got = (r.checkpoint.map(|(_, p)| p), r.wal);
            match combo {
                // Both slots healthy: newest checkpoint, newest suffix.
                0 => assert_eq!(got, (Some(p2.clone()), vec![b.clone()])),
                // One slot corrupted: whichever checkpoint survived,
                // with exactly the WAL suffix written after it.
                1 | 2 => {
                    let newer = (Some(p2.clone()), vec![b.clone()]);
                    let older = (Some(p1.clone()), vec![a.clone(), b.clone()]);
                    assert!(
                        got == newer || got == older,
                        "combo {combo}: unexpected recovery {got:?}"
                    );
                }
                // Both corrupted: no checkpoint; the whole surviving
                // WAL (nothing below `p1` existed to truncate).
                _ => assert_eq!(got, (None, vec![a.clone(), b.clone()])),
            }
        }
    }

    // Corrupting slot 0 and slot 1 must hit *different* checkpoints:
    // exactly one of the single-slot corruptions forces the older-slot
    // fallback.
    let mut fallbacks = 0;
    for slot in 0u8..2 {
        for mut store in build(&format!("which{slot}")) {
            store.checkpoint(p1.clone());
            store.wal_commit(a.clone());
            store.checkpoint(p2.clone());
            store.inject(StoreFault::CorruptSlot(slot));
            let r = store.load();
            if r.checkpoint.map(|(_, p)| p) == Some(p1.clone()) {
                fallbacks += 1;
            }
        }
    }
    assert_eq!(
        fallbacks, 2,
        "each backend must fall back for exactly one of the two slots"
    );
}

/// A crash halfway through writing the newest checkpoint slot: the
/// partially-written slot file is unparseable garbage on reopen, and
/// recovery falls back to the older slot plus the longer WAL suffix —
/// the install is atomic-or-ignored, never half-applied.
#[test]
fn file_store_crash_mid_checkpoint_falls_back_on_reopen() {
    let dir = scratch_dir("storage-midckpt");
    let mut store = FileStore::open(&dir).expect("open");
    store.checkpoint(b"stable".to_vec());
    store.wal_commit(b"delta-1".to_vec());
    store.checkpoint(b"newest".to_vec());
    store.wal_commit(b"delta-2".to_vec());
    drop(store);

    // Find the slot file holding "newest" and tear it: keep a prefix,
    // as a crash mid-write would.
    let mut torn = false;
    for slot in ["ckpt0.slot", "ckpt1.slot"] {
        let path = dir.join(slot);
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        if bytes
            .windows(b"newest".len())
            .any(|w| w == b"newest")
        {
            std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("tear slot");
            torn = true;
        }
    }
    assert!(torn, "newest checkpoint slot file not found");

    let reopened = FileStore::open(&dir).expect("reopen after torn install");
    let r = reopened.load();
    assert_eq!(
        r.checkpoint.map(|(_, p)| p),
        Some(b"stable".to_vec()),
        "torn slot was not ignored"
    );
    assert_eq!(r.wal, vec![b"delta-1".to_vec(), b"delta-2".to_vec()]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash halfway through a WAL frame: the partial trailing frame is
/// discarded on reopen and the durable prefix survives untouched.
#[test]
fn file_store_truncates_partial_trailing_wal_frame() {
    let dir = scratch_dir("storage-partial-frame");
    let mut store = FileStore::open(&dir).expect("open");
    store.wal_commit(b"whole-record".to_vec());
    store.wal_commit(b"doomed-record".to_vec());
    drop(store);

    let wal_path = dir.join("wal.log");
    let bytes = std::fs::read(&wal_path).expect("read wal");
    // Chop mid-way through the last frame's payload.
    std::fs::write(&wal_path, &bytes[..bytes.len() - 4]).expect("tear wal");

    let reopened = FileStore::open(&dir).expect("reopen after torn frame");
    let r = reopened.load();
    assert_eq!(r.wal, vec![b"whole-record".to_vec()]);
    let _ = std::fs::remove_dir_all(&dir);
}
