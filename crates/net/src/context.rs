//! The per-callback handle protocol code uses to interact with the
//! simulated world.

use crate::id::{GroupId, NodeId};
use crate::stats::Stats;
use crate::storage::StableStore;
use crate::time::{Duration, Time};
use mykil_crypto::drbg::Drbg;

/// Handle to a pending timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub(crate) u64);

/// Handle to a reliable send (see [`Context::send_reliable`]): identifies
/// the message in the [`Node`](crate::Node) ack/expiry callbacks and can
/// cancel a pending retransmission via [`Context::cancel_reliable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgToken(pub(crate) u64);

/// Deferred effects of a node callback, applied by the simulator after
/// the callback returns.
#[derive(Debug)]
pub(crate) enum Action {
    Send {
        to: NodeId,
        kind: &'static str,
        bytes: Vec<u8>,
        /// Compute time accumulated before this send was issued.
        after: Duration,
    },
    SendReliable {
        to: NodeId,
        kind: &'static str,
        bytes: Vec<u8>,
        msg_id: u64,
        after: Duration,
    },
    CancelReliable {
        msg_id: u64,
    },
    CancelReliableTo {
        peer: NodeId,
    },
    Multicast {
        group: GroupId,
        kind: &'static str,
        bytes: Vec<u8>,
        after: Duration,
    },
    SetTimer {
        delay: Duration,
        tag: u64,
        token: u64,
        after: Duration,
    },
    CancelTimer {
        token: u64,
    },
    JoinGroup {
        group: GroupId,
    },
    LeaveGroup {
        group: GroupId,
    },
}

/// Execution context passed to every [`Node`](crate::Node) callback.
///
/// All effects (sends, timers, group membership) are deferred and
/// applied by the simulator when the callback returns, which keeps the
/// model simple and the run deterministic.
pub struct Context<'a> {
    pub(crate) now: Time,
    pub(crate) self_id: NodeId,
    pub(crate) rng: &'a mut Drbg,
    pub(crate) stats: &'a mut Stats,
    pub(crate) actions: Vec<Action>,
    pub(crate) compute: Duration,
    pub(crate) next_token: &'a mut u64,
    pub(crate) next_msg_id: &'a mut u64,
    pub(crate) storage: &'a mut dyn StableStore,
}

impl<'a> Context<'a> {
    /// Current virtual time (does not include compute charged in this
    /// callback).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The node this callback runs on.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Deterministic per-run RNG.
    pub fn rng(&mut self) -> &mut Drbg {
        self.rng
    }

    /// Custom experiment counters (see [`Stats::bump`]).
    pub fn stats(&mut self) -> &mut Stats {
        self.stats
    }

    /// This node's simulated stable storage (WAL + checkpoints). State
    /// written and synced here survives crashes — modulo any injected
    /// storage fault — and is what [`Node::on_restarted`]
    /// (crate::Node::on_restarted) recovers from.
    pub fn storage(&mut self) -> &mut dyn StableStore {
        self.storage
    }

    /// Charges virtual CPU time; every subsequent effect in this
    /// callback is delayed by the accumulated amount.
    ///
    /// Protocol code uses this to model cryptographic cost: e.g. an RSA
    /// decryption on the paper's Pentium III is charged tens of
    /// milliseconds, which is what makes the Section V-D join-latency
    /// experiment meaningful.
    pub fn charge_compute(&mut self, d: Duration) {
        self.compute += d;
    }

    /// Compute charged so far in this callback.
    pub fn compute_charged(&self) -> Duration {
        self.compute
    }

    /// Sends `bytes` to `to`, tagged with an accounting `kind`.
    pub fn send(&mut self, to: NodeId, kind: &'static str, bytes: Vec<u8>) {
        self.actions.push(Action::Send {
            to,
            kind,
            bytes,
            after: self.compute,
        });
    }

    /// Sends `bytes` to `to` with at-least-once delivery: the simulator
    /// retransmits with exponential backoff until the receiver's network
    /// layer acknowledges the message or the retry budget is exhausted
    /// (see [`Simulator::set_reliable_policy`](crate::Simulator::set_reliable_policy)).
    ///
    /// Receivers are shielded from the "at-least-once" part by a
    /// per-peer dedup window, so `on_message` runs at most once per
    /// reliable send. The outcome is surfaced through
    /// [`Node::on_reliable_acked`](crate::Node::on_reliable_acked) and
    /// [`Node::on_reliable_expired`](crate::Node::on_reliable_expired).
    pub fn send_reliable(&mut self, to: NodeId, kind: &'static str, bytes: Vec<u8>) -> MsgToken {
        let msg_id = *self.next_msg_id;
        *self.next_msg_id += 1;
        self.actions.push(Action::SendReliable {
            to,
            kind,
            bytes,
            msg_id,
            after: self.compute,
        });
        MsgToken(msg_id)
    }

    /// Stops retransmitting a reliable send (e.g. because it has been
    /// superseded); a no-op if it was already acknowledged or expired.
    /// Neither the ack nor the expiry callback fires afterwards.
    pub fn cancel_reliable(&mut self, token: MsgToken) {
        self.actions.push(Action::CancelReliable { msg_id: token.0 });
    }

    /// Cancels every pending reliable send from this node to `peer`
    /// (e.g. after observing the peer crash or evicting it): their
    /// retransmit timers stop firing and neither the ack nor the expiry
    /// callback runs. Each cancelled send bumps the
    /// `reliable-cancelled` stat.
    pub fn cancel_reliable_to(&mut self, peer: NodeId) {
        self.actions.push(Action::CancelReliableTo { peer });
    }

    /// Multicasts `bytes` to every current member of `group` except the
    /// sender.
    pub fn multicast(&mut self, group: GroupId, kind: &'static str, bytes: Vec<u8>) {
        self.actions.push(Action::Multicast {
            group,
            kind,
            bytes,
            after: self.compute,
        });
    }

    /// Schedules [`Node::on_timer`](crate::Node::on_timer) with `tag`
    /// after `delay`; returns a token for cancellation.
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerToken {
        let token = *self.next_token;
        *self.next_token += 1;
        self.actions.push(Action::SetTimer {
            delay,
            tag,
            token,
            after: self.compute,
        });
        TimerToken(token)
    }

    /// Cancels a pending timer; a no-op if it already fired.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.actions.push(Action::CancelTimer { token: token.0 });
    }

    /// Subscribes this node to a multicast group.
    pub fn join_group(&mut self, group: GroupId) {
        self.actions.push(Action::JoinGroup { group });
    }

    /// Unsubscribes this node from a multicast group.
    pub fn leave_group(&mut self, group: GroupId) {
        self.actions.push(Action::LeaveGroup { group });
    }
}
