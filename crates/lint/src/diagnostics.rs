//! Diagnostics: what a rule reports, and how it is rendered for humans
//! and machines.

use std::fmt;
use std::path::Path;

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, e.g. `L001`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// Renders the finding as one JSON object (machine-readable mode
    /// emits one object per line — JSON Lines).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape_json(self.rule),
            escape_json(&self.file),
            self.line,
            escape_json(&self.message)
        )
    }
}

/// Renders a diagnostic set as a SARIF 2.1.0 log, the format CI
/// annotation tooling ingests. Hand-rolled like the JSON mode — the
/// workspace builds with zero external dependencies.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let rules: Vec<String> = crate::rules::RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                escape_json(r.id),
                escape_json(&collapse_ws(r.description))
            )
        })
        .collect();
    let results: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                escape_json(d.rule),
                escape_json(&d.message),
                escape_json(&d.file),
                d.line
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":\
         {{\"name\":\"mykil-lint\",\"informationUri\":\
         \"https://example.invalid/mykil\",\"rules\":[{}]}}}},\
         \"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

/// Collapses the multi-line registry descriptions to single-space text.
fn collapse_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Minimal JSON string escaping (the diagnostics contain no exotic
/// control characters, but quoting must still be airtight).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Normalizes a path for diagnostics: workspace-relative with forward
/// slashes.
pub fn display_path(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn human_format_is_clickable() {
        let d = Diagnostic {
            rule: "L001",
            file: "crates/core/src/x.rs".into(),
            line: 17,
            message: "no unwrap".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/x.rs:17: L001: no unwrap");
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            rule: "L002",
            file: "a.rs".into(),
            line: 1,
            message: "derive(\"Debug\") forbidden".into(),
        };
        let j = d.to_json();
        assert!(j.contains("\\\"Debug\\\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn sarif_contains_schema_rules_and_results() {
        let d = Diagnostic {
            rule: "L009",
            file: "crates/core/src/wire.rs".into(),
            line: 5,
            message: "bare `as u32`".into(),
        };
        let s = to_sarif(&[d]);
        assert!(s.contains("\"version\":\"2.1.0\""), "{s}");
        assert!(s.contains("\"ruleId\":\"L009\""));
        assert!(s.contains("\"startLine\":5"));
        // Every registry rule is described in the driver section.
        for rule in crate::rules::RULES {
            assert!(s.contains(&format!("\"id\":\"{}\"", rule.id)));
        }
        // Empty result sets still produce a valid log.
        let empty = to_sarif(&[]);
        assert!(empty.contains("\"results\":[]"));
    }

    #[test]
    fn paths_are_workspace_relative() {
        let root = PathBuf::from("/ws");
        let p = PathBuf::from("/ws/crates/core/src/a.rs");
        assert_eq!(display_path(&p, &root), "crates/core/src/a.rs");
    }
}
