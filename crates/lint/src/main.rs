//! `mykil-lint` CLI.
//!
//! ```text
//! mykil-lint --workspace [--format human|json]
//! mykil-lint [--format human|json] FILE...
//! mykil-lint --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O
//! error. JSON mode emits one object per finding (JSON Lines).

use mykil_lint::diagnostics::display_path;
use mykil_lint::{lint_source, lint_workspace, Diagnostic, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut workspace = false;
    let mut list_rules = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("mykil-lint: --format expects human|json, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mykil-lint: unknown flag {arg}");
                print_usage();
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{}  {}", rule.id, normalize_ws(rule.description));
        }
        return ExitCode::SUCCESS;
    }
    if !workspace && paths.is_empty() {
        eprintln!("mykil-lint: pass --workspace or at least one file");
        print_usage();
        return ExitCode::from(2);
    }

    let root = workspace_root();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    if workspace {
        match lint_workspace(&root) {
            Ok(d) => diagnostics.extend(d),
            Err(e) => {
                eprintln!("mykil-lint: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(source) => {
                let rel = display_path(path, &root);
                diagnostics.extend(lint_source(&rel, &source));
            }
            Err(e) => {
                eprintln!("mykil-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    for d in &diagnostics {
        match format {
            Format::Human => println!("{d}"),
            Format::Json => println!("{}", d.to_json()),
        }
    }
    if diagnostics.is_empty() {
        if matches!(format, Format::Human) {
            eprintln!("mykil-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if matches!(format, Format::Human) {
            eprintln!(
                "mykil-lint: {} finding{}",
                diagnostics.len(),
                if diagnostics.len() == 1 { "" } else { "s" }
            );
        }
        ExitCode::from(1)
    }
}

/// The workspace root: nearest ancestor of the current directory with a
/// `Cargo.toml` containing `[workspace]` (falls back to the cwd).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn print_usage() {
    eprintln!(
        "usage: mykil-lint [--workspace] [--format human|json] [--list-rules] [FILE...]\n\
         exit codes: 0 clean, 1 findings, 2 error"
    );
}
