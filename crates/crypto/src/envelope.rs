//! Authenticated symmetric envelopes and the hybrid RSA envelope.
//!
//! Two constructions used throughout the Mykil protocol:
//!
//! - [`seal`]/[`open`] — encrypt-then-MAC under a 128-bit
//!   [`SymmetricKey`]: ChaCha20 (keyed by a derived sub-key, random
//!   nonce) followed by HMAC-SHA256 truncated to 16 bytes. Every
//!   `E_K(...)` in the paper's figures (area-key updates, auxiliary-key
//!   distribution, random data keys) is one of these envelopes.
//! - [`HybridCiphertext`] — the Section V-D workaround: an RSA block can
//!   hold only ~200 bytes, so the sender wraps a fresh one-time
//!   symmetric key under RSA and seals the actual payload under that
//!   key. Mykil uses this for step 7 of the join protocol and step 6 of
//!   the rejoin protocol, where the auxiliary-key path does not fit in
//!   one block.

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::keys::SymmetricKey;
use crate::rsa::{RsaKeyPair, RsaPublicKey};
use crate::{chacha::ChaCha20, CryptoError, SYMMETRIC_KEY_LEN};
use rand::RngCore;

/// Truncated MAC length for symmetric envelopes (16 bytes, matching the
/// paper's 128-bit security level for symmetric material).
pub const ENVELOPE_MAC_LEN: usize = 16;

/// Nonce length prepended to each envelope.
pub const ENVELOPE_NONCE_LEN: usize = 12;

/// Fixed per-message overhead of [`seal`] in bytes.
pub const ENVELOPE_OVERHEAD: usize = ENVELOPE_NONCE_LEN + ENVELOPE_MAC_LEN;

fn cipher_for(key: &SymmetricKey, nonce: &[u8; ENVELOPE_NONCE_LEN]) -> ChaCha20 {
    let enc_key = key.derive(b"mykil-envelope-enc");
    let mut k32 = [0u8; 32];
    // mykil-lint: allow(L010) -- compile-time halves of a [u8; 32]
    k32[..SYMMETRIC_KEY_LEN].copy_from_slice(enc_key.as_bytes());
    // mykil-lint: allow(L010) -- compile-time halves of a [u8; 32]
    k32[SYMMETRIC_KEY_LEN..].copy_from_slice(enc_key.as_bytes());
    ChaCha20::new(&k32, nonce, 0)
}

/// Seals `plaintext` under `key`: `nonce || ciphertext || mac`.
pub fn seal<R: RngCore + ?Sized>(key: &SymmetricKey, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + ENVELOPE_OVERHEAD);
    seal_into(key, plaintext, rng, &mut out);
    out
}

/// [`seal`], appending the envelope to `out` instead of allocating.
///
/// Encryption and MAC computation run in place on the appended bytes,
/// so a caller that reuses `out` across messages (the rekey hot path
/// seals one 44-byte envelope per key copy) performs no per-envelope
/// allocations once the buffer has warmed up.
pub fn seal_into<R: RngCore + ?Sized>(
    key: &SymmetricKey,
    plaintext: &[u8],
    rng: &mut R,
    out: &mut Vec<u8>,
) {
    let start = out.len();
    out.reserve(plaintext.len() + ENVELOPE_OVERHEAD);
    let mut nonce = [0u8; ENVELOPE_NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(plaintext);
    let body_start = start + ENVELOPE_NONCE_LEN;
    // mykil-lint: allow(L010) -- body_start <= out.len() by the appends above
    cipher_for(key, &nonce).apply_keystream(&mut out[body_start..]);
    let mac_key = key.derive(b"mykil-envelope-mac");
    let mut mac = HmacSha256::new(mac_key.as_bytes());
    // `nonce || body` is contiguous in `out`; one update covers both.
    // mykil-lint: allow(L010) -- start was out.len() at entry
    mac.update(&out[start..]);
    let tag = mac.finalize();
    // mykil-lint: allow(L010) -- compile-time prefix of a [u8; 32]
    out.extend_from_slice(&tag[..ENVELOPE_MAC_LEN]);
}

/// Opens an envelope produced by [`seal`].
///
/// # Errors
///
/// Returns [`CryptoError::EnvelopeError`] on truncation and
/// [`CryptoError::VerificationFailed`] when the MAC does not match
/// (wrong key or tampering).
pub fn open(key: &SymmetricKey, envelope: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let (nonce, body) = verify_envelope(key, envelope)?;
    let mut plain = body.to_vec();
    cipher_for(key, &nonce).apply_keystream(&mut plain);
    Ok(plain)
}

/// Opens an envelope whose plaintext must be exactly `N` bytes,
/// without allocating (the rekey apply path opens 16-byte key
/// envelopes by the thousand).
///
/// # Errors
///
/// Returns [`CryptoError::EnvelopeError`] when the envelope length does
/// not match an `N`-byte plaintext, and
/// [`CryptoError::VerificationFailed`] when the MAC does not match.
pub fn open_fixed<const N: usize>(
    key: &SymmetricKey,
    envelope: &[u8],
) -> Result<[u8; N], CryptoError> {
    if envelope.len() != N + ENVELOPE_OVERHEAD {
        return Err(CryptoError::EnvelopeError("envelope length mismatch"));
    }
    let (nonce, body) = verify_envelope(key, envelope)?;
    let mut plain: [u8; N] = body
        .try_into()
        .map_err(|_| CryptoError::EnvelopeError("envelope length mismatch"))?;
    cipher_for(key, &nonce).apply_keystream(&mut plain);
    Ok(plain)
}

/// Checks the MAC and splits an envelope into `(nonce, ciphertext)`.
fn verify_envelope<'a>(
    key: &SymmetricKey,
    envelope: &'a [u8],
) -> Result<([u8; ENVELOPE_NONCE_LEN], &'a [u8]), CryptoError> {
    let (nonce_bytes, rest) = envelope
        .split_at_checked(ENVELOPE_NONCE_LEN)
        .ok_or(CryptoError::EnvelopeError("envelope truncated"))?;
    let body_len = rest
        .len()
        .checked_sub(ENVELOPE_MAC_LEN)
        .ok_or(CryptoError::EnvelopeError("envelope truncated"))?;
    let (body, tag) = rest
        .split_at_checked(body_len)
        .ok_or(CryptoError::EnvelopeError("envelope truncated"))?;
    let mac_key = key.derive(b"mykil-envelope-mac");
    let mut mac = HmacSha256::new(mac_key.as_bytes());
    mac.update(nonce_bytes);
    mac.update(body);
    let expected = mac.finalize();
    // mykil-lint: allow(L010) -- compile-time prefix of a [u8; 32]
    if !crate::ct::ct_eq(&expected[..ENVELOPE_MAC_LEN], tag) {
        return Err(CryptoError::VerificationFailed);
    }
    let nonce: [u8; ENVELOPE_NONCE_LEN] = nonce_bytes
        .try_into()
        .map_err(|_| CryptoError::EnvelopeError("envelope truncated"))?;
    Ok((nonce, body))
}

/// A hybrid RSA + symmetric ciphertext (the paper's one-time-key
/// workaround for the RSA block-size limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridCiphertext {
    /// RSA-OAEP encryption of the one-time symmetric key.
    wrapped_key: Vec<u8>,
    /// Symmetric envelope of the payload under the one-time key.
    sealed_payload: Vec<u8>,
}

impl HybridCiphertext {
    /// Encrypts `plaintext` of any length to `recipient`.
    ///
    /// # Errors
    ///
    /// Propagates RSA errors (practically impossible for ≥768-bit keys,
    /// since only a 16-byte key is RSA-encrypted).
    pub fn encrypt<R: RngCore + ?Sized>(
        recipient: &RsaPublicKey,
        plaintext: &[u8],
        rng: &mut R,
    ) -> Result<Self, CryptoError> {
        let one_time = SymmetricKey::random(rng);
        let wrapped_key = recipient.encrypt(one_time.as_bytes(), rng)?;
        let sealed_payload = seal(&one_time, plaintext, rng);
        Ok(HybridCiphertext {
            wrapped_key,
            sealed_payload,
        })
    }

    /// Decrypts with the recipient's key pair.
    ///
    /// # Errors
    ///
    /// Returns padding/MAC errors when the wrong key is used or the
    /// ciphertext was modified.
    pub fn decrypt(&self, pair: &RsaKeyPair) -> Result<Vec<u8>, CryptoError> {
        let key_bytes = pair.decrypt(&self.wrapped_key)?;
        let key_arr: [u8; SYMMETRIC_KEY_LEN] = key_bytes
            .as_slice()
            .try_into()
            .map_err(|_| CryptoError::EnvelopeError("wrapped key has wrong length"))?;
        open(&SymmetricKey::from_bytes(key_arr), &self.sealed_payload)
    }

    /// Total size on the wire.
    pub fn wire_len(&self) -> usize {
        self.wrapped_key.len() + self.sealed_payload.len()
    }

    /// Serializes as `len(wrapped) || wrapped || payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len() + 4);
        // A wrapped key is one RSA block (≤ modulus size); a value that
        // does not fit the prefix cannot be constructed, and try_from
        // keeps the impossible case loud instead of truncating.
        let klen = u32::try_from(self.wrapped_key.len())
            .expect("RSA-wrapped key length fits a u32 prefix");
        out.extend_from_slice(&klen.to_be_bytes());
        out.extend_from_slice(&self.wrapped_key);
        out.extend_from_slice(&self.sealed_payload);
        out
    }

    /// Parses the [`Self::to_bytes`] format.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::EnvelopeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let (len_bytes, rest) = bytes
            .split_at_checked(4)
            .ok_or(CryptoError::EnvelopeError("hybrid ciphertext truncated"))?;
        let len_arr: [u8; 4] = len_bytes
            .try_into()
            .map_err(|_| CryptoError::EnvelopeError("hybrid ciphertext truncated"))?;
        let klen = u32::from_be_bytes(len_arr) as usize;
        if rest.len() < klen + ENVELOPE_OVERHEAD {
            return Err(CryptoError::EnvelopeError("hybrid ciphertext truncated"));
        }
        let (wrapped, sealed) = rest
            .split_at_checked(klen)
            .ok_or(CryptoError::EnvelopeError("hybrid ciphertext truncated"))?;
        Ok(HybridCiphertext {
            wrapped_key: wrapped.to_vec(),
            sealed_payload: sealed.to_vec(),
        })
    }
}

/// Computes the paper-style MAC over a set of message fields
/// (used by protocol implementations to MAC "the first N pieces of
/// information" as each figure specifies).
pub fn mac_fields(key: &SymmetricKey, fields: &[&[u8]]) -> [u8; 32] {
    let mut joined = Vec::new();
    for f in fields {
        // Fields come from already-parsed frames (each capped well
        // below 4 GiB); try_from keeps the impossible overflow loud
        // instead of silently colliding two different field splits.
        let flen = u32::try_from(f.len()).expect("MAC field length fits a u32 prefix");
        joined.extend_from_slice(&flen.to_be_bytes());
        joined.extend_from_slice(f);
    }
    hmac_sha256(key.as_bytes(), &joined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;

    fn key() -> SymmetricKey {
        SymmetricKey::from_label("test-key")
    }

    #[test]
    fn seal_open_round_trip() {
        let mut rng = Drbg::from_seed(1);
        for len in [0usize, 1, 16, 100, 5000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let env = seal(&key(), &msg, &mut rng);
            assert_eq!(env.len(), len + ENVELOPE_OVERHEAD);
            assert_eq!(open(&key(), &env).unwrap(), msg, "len={len}");
        }
    }

    #[test]
    fn seal_into_appends_and_matches_open() {
        let mut rng = Drbg::from_seed(11);
        let mut buf = vec![0xEE; 7]; // pre-existing bytes must survive
        seal_into(&key(), b"sixteen byte key", &mut rng, &mut buf);
        assert_eq!(&buf[..7], &[0xEE; 7]);
        let env = &buf[7..];
        assert_eq!(env.len(), 16 + ENVELOPE_OVERHEAD);
        assert_eq!(open(&key(), env).unwrap(), b"sixteen byte key");
        assert_eq!(open_fixed::<16>(&key(), env).unwrap(), *b"sixteen byte key");
    }

    #[test]
    fn open_fixed_rejects_wrong_length_and_tampering() {
        let mut rng = Drbg::from_seed(12);
        let env = seal(&key(), &[0x42; 16], &mut rng);
        assert_eq!(open_fixed::<16>(&key(), &env).unwrap(), [0x42; 16]);
        // Length mismatch: a 17-byte plaintext cannot be a key envelope.
        assert_eq!(
            open_fixed::<16>(&key(), &seal(&key(), &[0x42; 17], &mut rng)),
            Err(CryptoError::EnvelopeError("envelope length mismatch"))
        );
        // Tampering still caught by the MAC.
        let mut bad = env.clone();
        bad[ENVELOPE_NONCE_LEN] ^= 1;
        assert_eq!(
            open_fixed::<16>(&key(), &bad),
            Err(CryptoError::VerificationFailed)
        );
        // Wrong key.
        assert_eq!(
            open_fixed::<16>(&SymmetricKey::from_label("other"), &env),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = Drbg::from_seed(2);
        let env = seal(&key(), b"area key update", &mut rng);
        let other = SymmetricKey::from_label("other");
        assert_eq!(
            open(&other, &env),
            Err(CryptoError::VerificationFailed)
        );
    }

    #[test]
    fn tampering_rejected_everywhere() {
        let mut rng = Drbg::from_seed(3);
        let env = seal(&key(), b"auxiliary keys", &mut rng);
        for i in 0..env.len() {
            let mut bad = env.clone();
            bad[i] ^= 0x01;
            assert!(open(&key(), &bad).is_err(), "byte {i} flip accepted");
        }
    }

    #[test]
    fn truncated_envelope_rejected() {
        let mut rng = Drbg::from_seed(4);
        let env = seal(&key(), b"x", &mut rng);
        assert!(open(&key(), &env[..ENVELOPE_OVERHEAD - 1]).is_err());
        assert!(open(&key(), &[]).is_err());
    }

    #[test]
    fn envelopes_are_randomized() {
        let mut rng = Drbg::from_seed(5);
        let a = seal(&key(), b"same", &mut rng);
        let b = seal(&key(), b"same", &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn hybrid_round_trip_large_payload() {
        let pair = crate::rsa::test_keys::pair768();
        let mut rng = Drbg::from_seed(6);
        // Larger than any RSA block: the aux-key path scenario.
        let payload: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        let ct = HybridCiphertext::encrypt(pair.public(), &payload, &mut rng).unwrap();
        assert_eq!(ct.decrypt(pair).unwrap(), payload);
    }

    #[test]
    fn hybrid_wrong_recipient_fails() {
        let pair = crate::rsa::test_keys::pair768();
        let other = crate::rsa::test_keys::pair768_b();
        let mut rng = Drbg::from_seed(7);
        let ct = HybridCiphertext::encrypt(pair.public(), b"ticket", &mut rng).unwrap();
        assert!(ct.decrypt(other).is_err());
    }

    #[test]
    fn hybrid_bytes_round_trip() {
        let pair = crate::rsa::test_keys::pair768();
        let mut rng = Drbg::from_seed(8);
        let ct = HybridCiphertext::encrypt(pair.public(), b"payload", &mut rng).unwrap();
        let back = HybridCiphertext::from_bytes(&ct.to_bytes()).unwrap();
        assert_eq!(ct, back);
        assert!(HybridCiphertext::from_bytes(&[1, 2]).is_err());
        assert!(HybridCiphertext::from_bytes(&[0, 0, 1, 0, 5]).is_err());
    }

    #[test]
    fn mac_fields_sensitive_to_boundaries() {
        let k = key();
        // ("ab","c") must differ from ("a","bc") — length prefixes matter.
        let t1 = mac_fields(&k, &[b"ab", b"c"]);
        let t2 = mac_fields(&k, &[b"a", b"bc"]);
        assert_ne!(t1, t2);
        assert_eq!(t1, mac_fields(&k, &[b"ab", b"c"]));
    }
}
