//! `mykil-lint --explain L00N`: per-rule invariant, a minimal
//! violating example, and fix guidance. CI prints a pointer to this
//! on failure so a red lint job explains itself.

/// The long-form explanation for one rule.
pub struct Explanation {
    /// Stable rule id (`L001`…).
    pub id: &'static str,
    /// The invariant the rule protects, and why it matters here.
    pub invariant: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
    /// How to fix a finding (and when suppression is legitimate).
    pub fix: &'static str,
}

/// Explanations for every rule, in id order.
pub const EXPLANATIONS: &[Explanation] = &[
    Explanation {
        id: "L001",
        invariant: "Non-test code in the protocol crates (core, net, tree) must not \
                    call unwrap()/expect(). A node processes bytes from untrusted \
                    peers; a panic on malformed input is a remote crash. Errors \
                    must degrade to ProtocolError and be handled by the caller.",
        example: "let msg = Msg::from_bytes(&payload).unwrap(); // peer controls payload",
        fix: "Propagate with `?`, or map to ProtocolError::Malformed. Harness \
              files (chaos injector, invariant checker) are allowlisted in \
              HARNESS_PATHS because only the test harness drives them. Any other \
              suppression needs a `-- reason` proving the value cannot be absent.",
    },
    Explanation {
        id: "L002",
        invariant: "Secret-bearing types (SymmetricKey, Rc4, ChaCha20, RsaKeyPair, \
                    SecretBytes) must not derive Debug/PartialEq/Hash and must \
                    impl Drop. Derived Debug prints key bytes into logs; derived \
                    equality walks bytes with early exit (timing leak); a missing \
                    Drop leaves key material in freed memory. In at-rest storage \
                    files (FileStore), every buffer handed to a write call must \
                    be SecretBytes::as_slice() output or fixed framing metadata \
                    (SCREAMING_CASE consts, to_le_bytes integers): checkpoint \
                    payloads and WAL records hold wrapped keys, and a raw Vec at \
                    the write boundary never zeroizes.",
        example: "#[derive(Debug, Clone, PartialEq)]\npub struct SymmetricKey([u8; 16]);",
        fix: "Drop the offending derives, compare through ct_eq, and zeroize in \
              an explicit Drop impl. At the disk boundary, carry payloads as \
              SecretBytes end to end and write payload.as_slice().",
    },
    Explanation {
        id: "L003",
        invariant: "MAC/digest/tag comparisons must use mykil_crypto::ct_eq, never \
                    ==/!=. Short-circuiting comparison leaks how many prefix bytes \
                    matched, which lets an attacker forge a MAC byte by byte.",
        example: "if computed_mac != msg.mac { return Err(ProtocolError::BadMac); }",
        fix: "Replace with `if !ct_eq(&computed_mac, &msg.mac)`. Suppress only for \
              comparisons provably not on secret material.",
    },
    Explanation {
        id: "L004",
        invariant: "Sim-deterministic crates (net, core) must not read wall-clock \
                    time (SystemTime, Instant). All behavior flows from the \
                    simulator's logical clock; a wall-clock read makes seeded runs \
                    unreproducible.",
        example: "let started = std::time::Instant::now();",
        fix: "Take time from Context (ctx.now()) so the simulator owns it.",
    },
    Explanation {
        id: "L005",
        invariant: "Protocol Msg dispatch must match variants exhaustively with no \
                    `_ =>` catch-all. A catch-all silently swallows new wire \
                    messages instead of forcing each handler to triage them when a \
                    variant is added.",
        example: "match msg { Msg::Join1(j) => self.join(j), _ => {} }",
        fix: "List every variant; route genuinely-unhandled ones to an explicit \
              ignore arm per variant so the compiler flags new additions.",
    },
    Explanation {
        id: "L006",
        invariant: "Deterministic crates (core, net, tree) must not iterate \
                    HashMap/HashSet (.iter/.iter_mut/.keys/.values/.drain/for \
                    loops). Hash-bucket order varies per process (SipHash keys are \
                    randomized), so any iteration feeding message emission, \
                    snapshot bytes, or schedule decisions breaks seeded chaos \
                    replay and byte-identical wire output.",
        example: "for (client, member) in &self.members { /* HashMap field */ }",
        fix: "Declare the collection as BTreeMap/BTreeSet (all Mykil key types \
              are Ord), or collect-and-sort in the same statement: \
              `let mut v: Vec<_> = m.keys().copied().collect(); v.sort_unstable();` \
              collapsed into one statement with a BTree/sort marker.",
    },
    Explanation {
        id: "L007",
        invariant: "WAL-before-ack (DESIGN.md §9): in a core handler that commits \
                    to the write-ahead log, every ack/reply Msg send \
                    (*Ack/*Denied/*Welcome/*Grant/*Reply) must come after the \
                    commit. If the node crashes between ack and commit, the peer \
                    believes state changed that recovery will never replay.",
        example: "ctx.send(peer, Msg::HeartbeatAck(..));\nself.wal_commit_record(ctx, &rec);",
        fix: "Move the wal_commit/wal_commit_record call above the send. The rule \
              only fires in functions that contain both a WAL call and an \
              ack-like send, so pure read paths and deny-without-mutation paths \
              are untouched.",
    },
    Explanation {
        id: "L008",
        invariant: "Every set_timer arm site must pass a named TIMER_* kind, and \
                    that kind must be matched, compared, or cancelled somewhere \
                    else in the same crate. An armed kind nobody handles is the \
                    stale-timer bug class: it fires (or survives a crash) and no \
                    code path is responsible for it.",
        example: "ctx.set_timer(delay, 42); // bare literal, nothing matches 42",
        fix: "Define `const TIMER_FOO: u64 = …;`, arm with it, and dispatch it in \
              on_timer (or cancel it). The constant's own definition and use- \
              imports do not count as handling.",
    },
    Explanation {
        id: "L009",
        invariant: "Wire/codec files must not narrow integers with bare `as` \
                    (u8/u16/u32/i8/i16/i32). `len() as u32` silently truncates \
                    oversized values into valid-looking length prefixes — the \
                    exact bug PR 5 shipped and had to hand-fix. u64/usize targets \
                    widen on every supported platform and stay legal.",
        example: "w.u32(bytes.len() as u32); // 4 GiB + 1 bytes encodes as 1",
        fix: "Use `u32::try_from(x)` and surface ProtocolError::Malformed (or the \
              Writer poisoning path). For constants, define the narrow type first \
              and derive the wide one with a widening `as`.",
    },
    Explanation {
        id: "L010",
        invariant: "Wire/codec files must not use panicking slice access: `x[i]`, \
                    `x[a..b]`, split_at, copy_from_slice, clone_from_slice. \
                    Hostile bytes flow through these files; an out-of-range index \
                    is a remote panic.",
        example: "let klen = u32::from_le_bytes(bytes[..4].try_into()?);",
        fix: "Use get(..)/get_mut(..) with ok_or(Malformed), split_at_checked, or \
              fixed-size arrays via try_into. Suppress only where the bound is \
              established by construction in the same function, with a `-- reason` \
              stating the invariant.",
    },
];

/// Looks up the explanation for `id` (case-insensitive).
pub fn explain(id: &str) -> Option<&'static Explanation> {
    let id = id.to_ascii_uppercase();
    EXPLANATIONS.iter().find(|e| e.id == id)
}

/// Renders one explanation as the `--explain` output text.
pub fn render(e: &Explanation) -> String {
    format!(
        "{id}\n{underline}\n\nInvariant:\n  {invariant}\n\nExample violation:\n\
         {example}\n\nFix:\n  {fix}\n",
        id = e.id,
        underline = "=".repeat(e.id.len()),
        invariant = e.invariant,
        example = e
            .example
            .lines()
            .map(|l| format!("  | {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        fix = e.fix,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULES;

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in RULES {
            assert!(
                explain(rule.id).is_some(),
                "missing --explain entry for {}",
                rule.id
            );
        }
        assert_eq!(EXPLANATIONS.len(), RULES.len());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(explain("l006").is_some());
        assert!(explain("L999").is_none());
    }

    #[test]
    fn render_contains_sections() {
        let text = render(explain("L007").unwrap());
        assert!(text.contains("Invariant:"));
        assert!(text.contains("Example violation:"));
        assert!(text.contains("Fix:"));
    }
}
