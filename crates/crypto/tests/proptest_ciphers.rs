//! Property-based tests for the symmetric primitives and envelopes.

use mykil_crypto::drbg::Drbg;
use mykil_crypto::envelope::{open, seal, ENVELOPE_OVERHEAD};
use mykil_crypto::hmac::{hmac_sha256, verify_hmac};
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::rc4::Rc4;
use mykil_crypto::sha256::Sha256;
use proptest::prelude::*;

proptest! {
    #[test]
    fn rc4_round_trips(key in proptest::collection::vec(any::<u8>(), 1..64),
                       data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let ct = Rc4::process(&key, &data);
        prop_assert_eq!(Rc4::process(&key, &ct), data);
    }

    #[test]
    fn rc4_streaming_consistent(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        data in proptest::collection::vec(any::<u8>(), 1..256),
        split in 0usize..256,
    ) {
        let split = split % data.len();
        let mut streamed = data.clone();
        let mut c = Rc4::new(&key);
        let (a, b) = streamed.split_at_mut(split);
        c.apply_keystream(a);
        c.apply_keystream(b);
        prop_assert_eq!(streamed, Rc4::process(&key, &data));
    }

    #[test]
    fn sha256_incremental_agrees(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split in 0usize..300,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_verifies_own_tags(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac(&key, &msg, &tag));
    }

    #[test]
    fn hmac_rejects_bit_flips(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let tag = hmac_sha256(&key, &msg);
        let mut bad = msg.clone();
        let idx = flip_byte % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(!verify_hmac(&key, &bad, &tag));
    }

    #[test]
    fn envelope_round_trips(
        key_bytes in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        seed in any::<u64>(),
    ) {
        let key = SymmetricKey::from_bytes(key_bytes);
        let mut rng = Drbg::from_seed(seed);
        let env = seal(&key, &payload, &mut rng);
        prop_assert_eq!(env.len(), payload.len() + ENVELOPE_OVERHEAD);
        prop_assert_eq!(open(&key, &env).unwrap(), payload);
    }

    #[test]
    fn envelope_rejects_other_keys(
        k1 in any::<[u8; 16]>(),
        k2 in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        seed in any::<u64>(),
    ) {
        prop_assume!(k1 != k2);
        let mut rng = Drbg::from_seed(seed);
        let env = seal(&SymmetricKey::from_bytes(k1), &payload, &mut rng);
        prop_assert!(open(&SymmetricKey::from_bytes(k2), &env).is_err());
    }

    #[test]
    fn drbg_reproducible(seed in any::<u64>()) {
        use rand::RngCore;
        let mut a = Drbg::from_seed(seed);
        let mut b = Drbg::from_seed(seed);
        let mut buf_a = [0u8; 48];
        let mut buf_b = [0u8; 48];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        prop_assert_eq!(buf_a, buf_b);
    }
}

proptest! {
    #[test]
    fn hybrid_ciphertext_from_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        // Arbitrary (attacker-controlled) wire bytes must parse to Ok
        // or EnvelopeError — never panic. Guards the split_at_checked
        // migration of the decode path (lint L010).
        use mykil_crypto::envelope::HybridCiphertext;
        let _ = HybridCiphertext::from_bytes(&bytes);
    }

    #[test]
    fn hybrid_ciphertext_truncation_at_every_boundary_is_rejected(
        wrapped in proptest::collection::vec(any::<u8>(), 1..48),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // A structurally valid frame (length prefix + wrapped key +
        // minimal envelope) parses and round-trips. The payload has no
        // length prefix — it is "the rest of the frame" — so a cut
        // inside the payload is a structurally valid shorter frame
        // (the MAC rejects it at decrypt time); every cut that reaches
        // into the header or the minimal envelope must be rejected by
        // the parser itself, never a panic.
        use mykil_crypto::envelope::{HybridCiphertext, ENVELOPE_OVERHEAD};
        let mut buf = Vec::new();
        buf.extend_from_slice(&(wrapped.len() as u32).to_be_bytes());
        buf.extend_from_slice(&wrapped);
        buf.extend_from_slice(&[0u8; ENVELOPE_OVERHEAD]);
        buf.extend_from_slice(&payload);

        let parsed = HybridCiphertext::from_bytes(&buf);
        prop_assert!(parsed.is_ok());
        prop_assert_eq!(parsed.unwrap().to_bytes(), buf.clone());

        let min_len = 4 + wrapped.len() + ENVELOPE_OVERHEAD;
        for cut in 0..buf.len() {
            let short = HybridCiphertext::from_bytes(&buf[..cut]);
            if cut < min_len {
                prop_assert!(
                    short.is_err(),
                    "cut at {}/{} must be rejected", cut, buf.len(),
                );
            } else {
                // Still lossless: the shorter frame re-serializes to
                // exactly the truncated bytes.
                prop_assert!(short.is_ok());
                prop_assert_eq!(short.unwrap().to_bytes(), buf[..cut].to_vec());
            }
        }
    }
}
