//! Mobility and fault-tolerance tests — the paper's Section IV:
//! ticket-based rejoin (Figure 7), cohort detection, partition
//! policies, disconnect-triggered automatic rejoin, member eviction,
//! AC parent switching, and primary-backup failover.

use mykil::config::RejoinPolicy;
use mykil::group::GroupBuilder;
use mykil::member::MemberPhase;
use mykil::msg::RejoinDenyReason;
use mykil_net::Duration;

#[test]
fn mobile_member_rejoins_with_ticket_not_registration() {
    let mut g = GroupBuilder::new(20).areas(2).build();
    // Manual member: the test scripts the roaming instead of the
    // automatic disconnect detector (covered by its own test below).
    let m = g.register_member_manual(1);
    g.sim.invoke(m, |mm: &mut mykil::member::Member, ctx| mm.start_join(ctx));
    g.settle();
    let home = g.member(m).area().unwrap().0 as usize;
    let away = 1 - home;
    assert_eq!(g.ac(home).member_count(), 1);

    // The member roams away: its link to the home AC drops, and after
    // a quiet period the home AC will confirm its departure.
    let home_ac = g.primaries[home];
    g.sim.cut_link(m, home_ac);
    g.sim.cut_link(home_ac, m);
    g.run_for(Duration::from_secs(1));
    let join_msgs_before = g.stats().kind("join").messages_sent;
    assert!(g.move_member(m, away));
    g.settle();

    assert!(g.is_member(m));
    assert_eq!(g.member(m).area().unwrap().0 as usize, away);
    assert_eq!(g.ac(away).member_count(), 1);
    assert_eq!(g.ac(away).stats.rejoins_admitted, 1);
    assert!(!g.ac(home).has_member(g.member(m).client_id().unwrap()));
    // No registration-server involvement: zero additional join traffic.
    assert_eq!(g.stats().kind("join").messages_sent, join_msgs_before);
    // The full verification path ran: steps 1,2,3,4,5,6 (six messages).
    assert_eq!(g.stats().kind("rejoin").messages_sent, 6);
    let t = g.member(m).timings;
    assert!(t.rejoin_completed.unwrap() > t.rejoin_started.unwrap());
}

#[test]
fn moved_member_keeps_receiving_data() {
    let mut g = GroupBuilder::new(21).areas(2).build();
    let a = g.register_member_manual(1);
    g.sim.invoke(a, |mm: &mut mykil::member::Member, ctx| mm.start_join(ctx));
    let b = g.register_member(2);
    g.settle();
    let area_a = g.member(a).area().unwrap().0 as usize;

    // Roam: drop the home link, go quiet, then rejoin across the group.
    let home_ac = g.primaries[area_a];
    g.sim.cut_link(a, home_ac);
    g.sim.cut_link(home_ac, a);
    g.run_for(Duration::from_secs(1));
    g.move_member(a, 1 - area_a);
    g.settle();
    assert!(g.is_member(a));

    g.send_data(b, b"after the move");
    g.run_for(Duration::from_secs(1));
    assert!(g
        .received_data(a)
        .contains(&b"after the move".to_vec()));
}

#[test]
fn active_member_rejoin_elsewhere_is_denied_cohort_defense() {
    let mut g = GroupBuilder::new(22).areas(2).build();
    let m = g.register_member(1);
    g.settle();
    let home = g.member(m).area().unwrap().0 as usize;

    // Keep the member visibly active at its home AC, then immediately
    // present its ticket to the other AC: steps 4/5 report "still a
    // member" and the rejoin is refused (Section IV-B cohort scenario).
    g.send_data(m, b"I am alive here");
    g.run_for(Duration::from_millis(50));
    g.move_member(m, 1 - home);
    g.settle();
    assert_eq!(
        g.member_phase(m),
        MemberPhase::Denied(RejoinDenyReason::StillMemberElsewhere)
    );
    assert_eq!(g.ac(1 - home).stats.rejoins_denied, 1);
}

#[test]
fn partition_policy_deny_refuses_unverifiable_rejoin() {
    let mut g = GroupBuilder::new(23)
        .areas(2)
        .rejoin_policy(RejoinPolicy::Deny)
        .build();
    let m = g.register_member(1);
    g.settle();
    let home = g.member(m).area().unwrap().0 as usize;
    let away = 1 - home;
    g.run_for(Duration::from_secs(1));

    // Cut the AC-to-AC links: AC_B cannot verify the departure.
    let (h, a) = (g.primaries[home], g.primaries[away]);
    g.sim.cut_link(a, h);
    g.sim.cut_link(h, a);

    g.move_member(m, away);
    g.run_for(Duration::from_secs(4));
    assert_eq!(
        g.member_phase(m),
        MemberPhase::Denied(RejoinDenyReason::PartitionedStrict)
    );
}

#[test]
fn partition_policy_admit_checks_device_and_admits() {
    let mut g = GroupBuilder::new(24)
        .areas(2)
        .rejoin_policy(RejoinPolicy::AdmitWithDeviceCheck)
        .build();
    let m = g.register_member(1);
    g.settle();
    let home = g.member(m).area().unwrap().0 as usize;
    let away = 1 - home;
    g.run_for(Duration::from_secs(1));

    let (h, a) = (g.primaries[home], g.primaries[away]);
    g.sim.cut_link(a, h);
    g.sim.cut_link(h, a);

    g.move_member(m, away);
    g.run_for(Duration::from_secs(4));
    // Same NIC as in the ticket: admitted despite the partition
    // (Section IV-B option 2).
    assert!(g.is_member(m));
    assert_eq!(g.member(m).area().unwrap().0 as usize, away);
}

#[test]
fn disconnected_member_auto_rejoins_another_area() {
    let mut g = GroupBuilder::new(25).areas(2).build();
    let m = g.register_member(1);
    g.settle();
    let home = g.member(m).area().unwrap().0 as usize;
    let home_ac = g.primaries[home];

    // Sever the member <-> home-AC path in both directions; everything
    // else stays reachable.
    g.sim.cut_link(home_ac, m);
    g.sim.cut_link(m, home_ac);

    // 5*T_idle of silence triggers detection; the member then rejoins
    // via its ticket at the other AC automatically.
    g.run_for(Duration::from_secs(6));
    assert!(g.member(m).disconnects_detected >= 1);
    assert!(g.is_member(m));
    assert_eq!(g.member(m).area().unwrap().0 as usize, 1 - home);
}

#[test]
fn silent_member_is_evicted_and_area_rekeyed() {
    let mut g = GroupBuilder::new(26).areas(1).build();
    let quiet = g.register_member(1);
    let stayer = g.register_member(2);
    g.settle();
    let key_before = g.ac(0).area_key();
    assert_eq!(g.ac(0).member_count(), 2);

    // Partition the quiet member away entirely: it cannot send alives.
    g.sim.partition(quiet, 9);
    // 5*T_active (2s with test timers) plus a sweep period.
    g.run_for(Duration::from_secs(5));

    assert_eq!(g.ac(0).member_count(), 1);
    assert!(g.ac(0).stats.evictions >= 1);
    // Forward secrecy: the area key rotated on eviction and the
    // remaining member tracked it.
    let key_after = g.ac(0).area_key();
    assert_ne!(key_before, key_after);
    assert_eq!(g.member(stayer).current_area_key(), Some(key_after));
}

#[test]
fn backup_takes_over_after_primary_crash() {
    let mut g = GroupBuilder::new(27).areas(1).replicated(true).build();
    let a = g.register_member(1);
    let b = g.register_member(2);
    g.settle();
    assert!(g.is_member(a) && g.is_member(b));
    let members_before = g.ac(0).member_count();

    g.crash_ac(0);
    // Failover: 3 missed heartbeats at 100 ms.
    g.run_for(Duration::from_secs(3));

    let backup = g.backup(0);
    assert_eq!(backup.role(), mykil::area::Role::Primary);
    assert_eq!(backup.stats.takeovers, 1);
    // Replicated state survived: same membership view.
    assert_eq!(backup.member_count(), members_before);

    // The data plane works again through the new controller.
    g.send_data(a, b"after failover");
    g.run_for(Duration::from_secs(2));
    assert!(g
        .received_data(b)
        .contains(&b"after failover".to_vec()));
}

#[test]
fn registration_routes_new_joins_to_promoted_backup() {
    let mut g = GroupBuilder::new(28).areas(1).replicated(true).build();
    g.register_member(1);
    g.settle();
    g.crash_ac(0);
    g.run_for(Duration::from_secs(3));
    assert_eq!(g.backup(0).role(), mykil::area::Role::Primary);

    // A brand-new member joins through the RS; the directory now points
    // at the promoted backup.
    let newcomer = g.register_member(2);
    g.settle();
    assert!(g.is_member(newcomer));
    assert!(g.backup(0).member_count() >= 2);
}

#[test]
fn child_ac_switches_parent_when_parent_area_dies() {
    // Areas: 0 root, 1 and 2 children of 0. Kill AC0: areas 1 and 2
    // must re-parent to each other and keep exchanging data.
    let mut g = GroupBuilder::new(29).areas(3).build();
    let members: Vec<_> = (0..3).map(|i| g.register_member(i)).collect();
    g.settle();
    let by_area = |g: &mykil::group::GroupHandle, area: u32| {
        members
            .iter()
            .copied()
            .find(|&m| g.member(m).area().unwrap().0 == area)
            .unwrap()
    };
    let m1 = by_area(&g, 1);
    let m2 = by_area(&g, 2);

    g.crash_ac(0);
    // Parent silence threshold is 5*T_idle = 500 ms; allow the signed
    // area-join exchange to finish.
    g.run_for(Duration::from_secs(4));
    let switches = g.ac(1).stats.parent_switches + g.ac(2).stats.parent_switches;
    assert!(switches >= 1, "no parent switch happened");

    g.send_data(m1, b"via new parent");
    g.run_for(Duration::from_secs(2));
    assert!(
        g.received_data(m2).contains(&b"via new parent".to_vec()),
        "area 2 unreachable after re-parenting"
    );
}

#[test]
fn members_survive_transient_partition_without_rejoin() {
    // A partition shorter than the detection threshold heals silently.
    let mut g = GroupBuilder::new(30).areas(1).build();
    let m = g.register_member(1);
    g.settle();
    g.sim.partition(m, 3);
    g.run_for(Duration::from_millis(300)); // < 5*T_idle
    g.sim.heal_partitions();
    g.run_for(Duration::from_secs(2));
    assert!(g.is_member(m));
    assert_eq!(g.member(m).disconnects_detected, 0);
    assert_eq!(g.member(m).area().unwrap().0, 0);
}

#[test]
fn group_converges_despite_message_loss() {
    // 5% uniform message loss: joins retry, missed key updates are
    // recovered via epoch beacons and refresh requests.
    let mut g = GroupBuilder::new(31).areas(1).build();
    g.sim.set_loss_per_mille(50);
    let a = g.register_member(1);
    let b = g.register_member(2);
    g.run_for(Duration::from_secs(20));

    assert!(g.is_member(a), "member a never joined under loss");
    assert!(g.is_member(b), "member b never joined under loss");
    let key = g.ac(0).area_key();
    assert_eq!(g.member(a).current_area_key(), Some(key.clone()));
    assert_eq!(g.member(b).current_area_key(), Some(key));

    // Clean network again: data flows.
    g.sim.set_loss_per_mille(0);
    g.send_data(a, b"after the storm");
    g.run_for(Duration::from_secs(2));
    assert!(g
        .received_data(b)
        .contains(&b"after the storm".to_vec()));
}

#[test]
fn heavy_loss_then_recovery() {
    // A burst of 30% loss while the group is running; after it clears,
    // all members resynchronize without manual intervention.
    let mut g = GroupBuilder::new(32).areas(2).build();
    let members: Vec<_> = (0..4).map(|i| g.register_member(i)).collect();
    g.settle();
    for &m in &members {
        assert!(g.is_member(m));
    }

    g.sim.set_loss_per_mille(300);
    // Churn during the lossy period.
    let late = g.register_member(9);
    g.run_for(Duration::from_secs(10));
    g.sim.set_loss_per_mille(0);
    g.run_for(Duration::from_secs(10));

    assert!(g.is_member(late), "join never completed under heavy loss");
    for &m in members.iter().chain([&late]) {
        let area = g.member(m).area().unwrap().0 as usize;
        assert_eq!(
            g.member(m).current_area_key(),
            Some(g.ac(area).area_key()),
            "member stale after loss burst"
        );
    }
}

#[test]
fn deep_hierarchy_survives_mid_level_crash() {
    // Areas: 0 root; 1,2 children of 0; 3,4 children of 1; 5,6 children
    // of 2. Crash AC1: areas 3 and 4 must re-parent root-ward (cycle-
    // free) and cross-hierarchy data must keep flowing.
    let mut g = GroupBuilder::new(33).areas(7).build();
    let members: Vec<_> = (0..7).map(|i| g.register_member(i)).collect();
    g.settle();
    let by_area = |g: &mykil::group::GroupHandle, area: u32| {
        members
            .iter()
            .copied()
            .find(|&m| g.member(m).area().unwrap().0 == area)
            .unwrap()
    };
    let m3 = by_area(&g, 3);
    let m6 = by_area(&g, 6);

    // Sanity: leaf-to-leaf data across three hierarchy levels.
    g.send_data(m3, b"before crash");
    g.run_for(Duration::from_secs(2));
    assert!(g.received_data(m6).contains(&b"before crash".to_vec()));

    g.sim.crash(g.primaries[1]);
    g.run_for(Duration::from_secs(5));
    let s3 = g.ac(3).stats.parent_switches;
    let s4 = g.ac(4).stats.parent_switches;
    assert!(s3 >= 1 && s4 >= 1, "orphaned areas did not re-parent (s3={s3} s4={s4})");
    // Root-ward rule: new parents have lower area ids than the child.
    assert!(g.ac(3).parent().unwrap().area.0 < 3);
    assert!(g.ac(4).parent().unwrap().area.0 < 4);

    // The member of area 1 is orphaned with its AC, but areas 3..6 and
    // the root keep exchanging data.
    g.send_data(m3, b"after crash");
    g.run_for(Duration::from_secs(3));
    assert!(
        g.received_data(m6).contains(&b"after crash".to_vec()),
        "hierarchy did not heal around the crashed mid-level controller"
    );
}
